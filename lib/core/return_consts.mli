(** The return-constants extension (paper §3.2): one additional reverse
    topological traversal with a second flow-sensitive analysis per
    procedure computes each procedure's exit summary — the constants it
    leaves in by-reference parameters and globals — which callers' call
    instructions then define instead of ⊥. *)

open Fsicp_cfg
open Fsicp_ssa
open Fsicp_scc

type summary = {
  rs_formals : Lattice.t array;  (** exit value per formal's location *)
  rs_globals : (Fsicp_prog.Prog.Var.id * Lattice.t) list;
}

type t = {
  summaries : (string, summary) Hashtbl.t;
  refined : (string, Scc.result) Hashtbl.t;
      (** the reverse-traversal SCC results, with call effects refined *)
  extra_scc_runs : int;
}

val summary_of : t -> string -> summary option

(** Post-call value of a caller-side variable for one call, given the
    callee's summary: the meet over every channel (by-reference argument
    positions binding it, and the global itself).  Answers in packed
    lattice words ({!Lattice.P}); [censor] is the packed
    {!Context.censor_w}. *)
val call_def_value_from :
  (string, summary) Hashtbl.t ->
  censor:(int -> int) ->
  Ssa.call ->
  Ir.var ->
  int

(** Run the reverse traversal on top of a forward FS solution; exactly one
    additional SCC per procedure. *)
val compute : Context.t -> fs:Solution.t -> t

(** The summaries as a [Fs_icp.solve ~call_def_value] oracle (packed). *)
val as_oracle :
  t ->
  censor:(int -> int) ->
  caller:string ->
  Ssa.call ->
  Ir.var ->
  int
