(** The result shape shared by every interprocedural constant propagation
    method: per-procedure entry lattice values (formals and globals) and
    per-call-site argument/global values — the two things the paper's
    metrics count.

    Procedures are identified by the program database's dense
    {!Fsicp_prog.Prog.Proc.id}s; per-procedure state is stored in
    {!Prog.Proc.Tbl} arrays and call records are indexed by
    [(caller id, cs_index)] without any string hashing.  Ids come from the
    {!Fsicp_callgraph.Callgraph.t} the solution was computed over; ids from
    any other program database are out of contract. *)

open Fsicp_prog
open Fsicp_scc

type callsite_record = {
  cr_caller : Prog.Proc.id;
  cr_cs_index : int;
  cr_callee : Prog.Proc.id;
  cr_executable : bool;
      (** false when the method proved the site unreachable; such sites
          propagate nothing *)
  cr_args : Lattice.t array;
  cr_globals : (Prog.Var.id * Lattice.t) list;
      (** values at the site of the globals in the callee's REF closure *)
}

type proc_entry = {
  pe_formals : Lattice.t array;
  pe_globals : (Prog.Var.id * Lattice.t) list;
}

type t = {
  method_name : string;
  db : Prog.t;  (** the program database the ids below belong to *)
  entries : proc_entry Prog.Proc.Tbl.t;
  call_records : callsite_record list;
  call_index : callsite_record option array Prog.Proc.Tbl.t;
      (** records by caller id and [cs_index]; kept consistent with
          [call_records] by {!make} *)
  scc_runs : int;
      (** flow-sensitive intraprocedural analyses performed — the paper's
          headline is exactly one per procedure for the FS method *)
  scc_results : Scc.result option Prog.Proc.Tbl.t;
      (** per-procedure SCC runs, when the method performs them ([None]
          everywhere for flow-insensitive methods) *)
}

(** Assemble a solution, building the dense [(caller, cs_index)]
    call-record index in the same pass as the list. *)
val make :
  method_name:string ->
  db:Prog.t ->
  entries:proc_entry Prog.Proc.Tbl.t ->
  call_records:callsite_record list ->
  scc_runs:int ->
  scc_results:Scc.result option Prog.Proc.Tbl.t ->
  t

val empty_entry : proc_entry

val proc_name : t -> Prog.Proc.id -> string
val entry_at : t -> Prog.Proc.id -> proc_entry

(** Name-based lookups, for boundary code that still holds AST names
    (unreachable procedures resolve to {!empty_entry} / [None]). *)
val entry : t -> string -> proc_entry

val entry_opt : t -> string -> proc_entry option

(** Entry lattice value of the [i]-th formal of a procedure. *)
val formal_value : t -> string -> int -> Lattice.t

(** Entry lattice value of a global in a procedure ([Bot] if untracked). *)
val global_value : t -> string -> string -> Lattice.t

val constant_formals : t -> (string * int * Fsicp_lang.Value.t) list
val constant_globals : t -> (string * string * Fsicp_lang.Value.t) list

val find_call_record :
  t -> caller:Prog.Proc.id -> cs_index:int -> callsite_record option

(** Canonical full print — entries, call records, per-procedure SCC
    results, [scc_runs] — keyed by names, never by context-minted ids, so
    digests of independent solves of the same program are comparable.
    Byte-equality of digests is the definition of "identical solutions"
    used by the incremental-engine oracle and the serve daemon. *)
val digest : t -> string

val pp : t Fmt.t
