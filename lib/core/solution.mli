(** The result shape shared by every interprocedural constant propagation
    method: per-procedure entry lattice values (formals and globals) and
    per-call-site argument/global values — the two things the paper's
    metrics count. *)

open Fsicp_scc

type callsite_record = {
  cr_caller : string;
  cr_cs_index : int;
  cr_callee : string;
  cr_executable : bool;
      (** false when the method proved the site unreachable; such sites
          propagate nothing *)
  cr_args : Lattice.t array;
  cr_globals : (string * Lattice.t) list;
      (** values at the site of the globals in the callee's REF closure *)
}

type proc_entry = {
  pe_formals : Lattice.t array;
  pe_globals : (string * Lattice.t) list;
}

type t = {
  method_name : string;
  entries : (string, proc_entry) Hashtbl.t;
  call_records : callsite_record list;
  call_index : (string * int, callsite_record) Hashtbl.t;
      (** records keyed by (caller, cs_index); kept consistent with
          [call_records] by {!make} *)
  scc_runs : int;
      (** flow-sensitive intraprocedural analyses performed — the paper's
          headline is exactly one per procedure for the FS method *)
  scc_results : (string, Scc.result) Hashtbl.t;
}

(** Assemble a solution, building the (caller, cs_index) call-record index
    in the same pass as the list. *)
val make :
  method_name:string ->
  entries:(string, proc_entry) Hashtbl.t ->
  call_records:callsite_record list ->
  scc_runs:int ->
  scc_results:(string, Scc.result) Hashtbl.t ->
  t

val empty_entry : proc_entry
val entry : t -> string -> proc_entry

(** Entry lattice value of the [i]-th formal of a procedure. *)
val formal_value : t -> string -> int -> Lattice.t

(** Entry lattice value of a global in a procedure ([Bot] if untracked). *)
val global_value : t -> string -> string -> Lattice.t

val constant_formals : t -> (string * int * Fsicp_lang.Value.t) list
val constant_globals : t -> (string * string * Fsicp_lang.Value.t) list
val find_call_record : t -> caller:string -> cs_index:int -> callsite_record option
val pp : t Fmt.t
