(** Long-lived analysis session with incremental re-analysis — the core of
    [fsicp serve].

    Holds the {!Context.t} and the current flow-insensitive and
    flow-sensitive solutions hot across procedure-body edits.  A
    shape-preserving edit (same procedures, same callee sequences, same
    IPA summary shape) invalidates only the edited procedure's artifacts
    and re-drives the flow-sensitive wavefront over the downstream cone of
    the edit (plus back-edge-reached procedures whose flow-insensitive
    records changed); a shape-changing edit falls back to a full rebuild.
    In both cases {!solution} is identical to a from-scratch solve of the
    edited program, at any [jobs] — the differential oracle checks this
    byte-for-byte over random edit sequences. *)

open Fsicp_lang

type t

type outcome =
  | Incremental of { dirty : int; total : int }
      (** [dirty] procedures re-driven out of [total] reachable *)
  | Rebuilt of string  (** full rebuild, with the reason *)

(** Build the context and solve both methods from scratch.
    @raise Sema.Illformed on an ill-formed program. *)
val create : ?floats:bool -> ?jobs:int -> Ast.program -> t

val context : t -> Context.t

(** The current flow-sensitive solution. *)
val solution : t -> Solution.t

(** The current flow-insensitive solution (the back-edge seed, kept for
    record diffing on the next edit). *)
val fi_solution : t -> Solution.t

(** Session counters: [procs], [edits], [incremental_edits], [rebuilds],
    [edit_epoch]. *)
val stats : t -> (string * int) list

(** Replace procedure [p.pname]'s definition (or add a new procedure) and
    re-establish both solutions, incrementally when the edit preserves the
    program shape.
    @raise Sema.Illformed when the edited program fails {!Sema.check};
    engine state is untouched in that case. *)
val edit_proc : ?jobs:int -> t -> Ast.proc -> outcome

(**/**)

(** Exposed for tests: shape equality of two procedure summaries — the
    exact condition for the incremental route. *)
val summary_shape_equal :
  Fsicp_ipa.Summary.proc_summary -> Fsicp_ipa.Summary.proc_summary -> bool
