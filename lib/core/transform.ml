(** Program transformation from ICP results (paper Figure 2, step 6, and the
    substitution metric of Table 5).

    The paper materialises interprocedural constants during the backward
    walk: "This propagation is equivalent to adding an assignment statement
    for each constant variable at the beginning of the procedure where it
    is constant.  Assignment statements are created only for those
    variables that are referenced in that procedure." —
    {!insert_entry_constants} does exactly that at the AST level, producing
    a semantically equivalent program (checked by property tests).

    {!substitutions} computes the Grove–Torczon/Metzger–Stroud metric the
    paper reports in Table 5: run the final intraprocedural constant
    propagation of each procedure with the method's interprocedural
    constants as the entry environment, and count the uses of source
    variables proved constant in live code. *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_cfg
open Fsicp_scc

(** [insert_entry_constants ctx solution] returns a copy of the program in
    which every procedure starts with [x = c;] assignments for each formal
    and global the solution proves constant at its entry {e and} that the
    procedure references.  Procedures not reachable from main are kept
    unchanged. *)
let insert_entry_constants (ctx : Context.t) (solution : Solution.t) :
    Ast.program =
  let prog = ctx.Context.prog in
  let procs =
    List.map
      (fun (p : Ast.proc) ->
        match Solution.entry_opt solution p.Ast.pname with
        | None -> p
        | Some entry ->
            let read = Ast.read_vars p in
            let formal_assigns =
              List.mapi
                (fun i f ->
                  match
                    if i < Array.length entry.Solution.pe_formals then
                      entry.Solution.pe_formals.(i)
                    else Lattice.Bot
                  with
                  | Lattice.Const v when List.mem f read ->
                      [ Ast.assign f (Ast.Const v) ]
                  | Lattice.Top | Lattice.Const _ | Lattice.Bot -> [])
                p.Ast.formals
              |> List.concat
            in
            let global_assigns =
              List.filter_map
                (fun (g, v) ->
                  let name = Prog.Var.name g in
                  match v with
                  | Lattice.Const value
                    when List.mem name read
                         && not (List.mem name p.Ast.formals) ->
                      Some (Ast.assign name (Ast.Const value))
                  | Lattice.Top | Lattice.Const _ | Lattice.Bot -> None)
                entry.Solution.pe_globals
            in
            { p with Ast.body = formal_assigns @ global_assigns @ p.Ast.body })
      prog.Ast.procs
  in
  { prog with Ast.procs }

(** Per-procedure and total substitution counts for a method's solution:
    one final SCC per reachable procedure, seeded with the method's entry
    constants.  (For the flow-sensitive method this re-derives exactly the
    interleaved runs' results; re-running keeps the metric uniform across
    methods.) *)
let substitutions (ctx : Context.t) (solution : Solution.t) :
    (string * int) list * int =
  let blockdata = Context.blockdata_env ctx in
  let pcg = ctx.Context.pcg in
  let per_proc =
    Array.to_list (Fsicp_callgraph.Callgraph.forward_order pcg)
    |> List.map (fun pid ->
           let proc = Fsicp_callgraph.Callgraph.proc_name pcg pid in
           let entry = Solution.entry_at solution pid in
           let entry_env (v : Ir.var) =
             Lattice.P.of_t
             @@
             match v.Ir.vkind with
             | Ir.Formal i ->
                 if i < Array.length entry.Solution.pe_formals then
                   entry.Solution.pe_formals.(i)
                 else Lattice.Bot
             | Ir.Global -> (
                 match List.assoc_opt v.Ir.vid entry.Solution.pe_globals with
                 | Some value -> value
                 | None ->
                     if String.equal proc ctx.Context.prog.Ast.main then
                       match List.assoc_opt v.Ir.vid blockdata with
                       | Some value -> value
                       | None -> Lattice.Bot
                     else Lattice.Bot)
             | Ir.Local | Ir.Temp -> Lattice.Bot
           in
           let res =
             Scc.run
               ~config:{ Scc.default_config with entry_env }
               (Context.ssa_at ctx pid)
           in
           (proc, Scc.substitution_count res))
  in
  (per_proc, List.fold_left (fun acc (_, n) -> acc + n) 0 per_proc)
