(** Copy-constant interprocedural propagation.

    The flow-sensitive method ({!Fs_icp}) loses a constant whenever it
    reaches a call site {e before} the value is known: the kernel records
    ⊥ for an argument that merely {e copies} a formal or global whose
    entry value has not been discovered yet, and — the paper's deliberate
    trade — back edges are seeded from the flow-insensitive solution
    rather than iterated.  This method keeps the copies alive instead.

    The packed lattice gains a fourth word class ({!Lattice.P.copy}):
    "equal to entry slot [k] of this procedure".  Each intraprocedural
    analysis — the same flat SCC kernel, arena scratch and entry-vector
    memo as {!Fs_icp}; never the retained reference path — runs with an
    entry environment that binds every non-constant formal and
    REF-closure global to its own copy word, so direct copies survive
    assignments and φ-meets while any arithmetic over them collapses to ⊥
    (only genuine copies propagate).  Call-site records then hold
    constants {e or} unevaluated copy bindings; the interprocedural meet
    evaluates a copy record against the caller's current entry table, so
    a constant discovered at pass [n] flows through every chain of copies
    by pass [n+1].

    The driver is a Gauss–Seidel fixpoint in PCG forward order, exactly
    the {!Reference} schedule: within a pass, forward edges see records
    of the same pass and back edges see the previous pass's (nothing on
    the first — the optimistic ⊤ start), iterating until no entry
    changes.  On an acyclic PCG the first pass already agrees with
    {!Fs_icp}; with cycles the optimistic iteration is at least as
    precise as FS's pessimistic flow-insensitive back-edge seed, so
    [fs ⊑ cc] everywhere (fuzzed by the oracle, alongside [fs ⊑ ref]).

    Copy words never escape: the assembled {!Solution.t} evaluates every
    record against the final entry tables, and [scc_results] is [None]
    (the raw kernel arrays still hold copy words, which do not box). *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_cfg
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_ipa
open Fsicp_scc

let method_name = "copy-constant"

module Trace = Fsicp_trace.Trace
module P = Lattice.P

(* Deterministic per program: the forward schedule is fixed and every
   pass either changes an entry or is the last. *)
let c_passes = Trace.counter "cc.passes"

let max_passes = 100

(* One call-site record: executability plus the {e unevaluated} packed
   words of every argument and REF-closure global — constants, copy
   bindings into the caller's entry slots, or ⊥. *)
type record = {
  rec_exec : bool;
  rec_args : int array;
  rec_globals : (Prog.Var.id * int) array;
}

(** [solve ?jobs ctx] — the copy-constant solution.  [jobs] is accepted
    for interface symmetry with the other methods and ignored: the
    Gauss–Seidel schedule is inherently sequential (each pass reads the
    entries the same pass just wrote), and a pass is one kernel run per
    procedure, memo-hit whenever its entry vector repeats. *)
let solve_body ?jobs (ctx : Context.t) : Solution.t =
  ignore jobs;
  let pcg = ctx.Context.pcg in
  let db = pcg.Callgraph.db in
  let nodes = pcg.Callgraph.nodes in
  let n = Array.length nodes in
  let main = ctx.Context.prog.Ast.main in

  (* Per-procedure entry shape: formal count, sorted REF-closure global
     ids.  Entry slot [j < nf] is formal [j]; slot [nf + k] is global
     [gids.(k)] — the numbering both the kernel's copy words and the
     record evaluation below share. *)
  let nf = Array.make n 0 in
  let gids : Prog.Var.id array array = Array.make n [||] in
  Array.iteri
    (fun i pid ->
      let proc = Prog.proc_name db pid in
      nf.(i) <-
        List.length
          (Summary.find ctx.Context.summaries proc).Summary.ps_formals;
      let gs =
        Modref.call_global_refs ctx.Context.modref ~callee:proc
        |> List.map (fun (g : Ir.var) -> g.Ir.vid)
        |> Array.of_list
      in
      Array.sort Prog.Var.compare gs;
      gids.(i) <- gs)
    nodes;
  let gfind i (g : int) =
    let gs = gids.(i) in
    let lo = ref 0 and hi = ref (Array.length gs - 1) in
    let found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) lsr 1 in
      let gm = Prog.Var.to_int gs.(mid) in
      if gm = g then begin
        found := mid;
        lo := !hi + 1
      end
      else if gm < g then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in

  (* Current finalized entry tables (constants or ⊥ only, never ⊤ and
     never a copy): what copy records evaluate against, and what the
     kernel's constant entry bindings come from. *)
  let formals = Array.init n (fun i -> Array.make nf.(i) P.bot) in
  let gvals = Array.init n (fun i -> Array.make (Array.length gids.(i)) P.bot) in
  let visited = Array.make n false in

  (* Evaluate a recorded word of caller [i] against the caller's current
     entry table.  Entries are censored at their own boundaries, so the
     evaluation needs no further censoring. *)
  let eval_word i w =
    if not (P.is_copy w) then w
    else
      let k = P.copy_slot w in
      if k < nf.(i) then formals.(i).(k) else gvals.(i).(k - nf.(i))
  in

  let blockdata = Context.blockdata_env ctx in
  let blockdata_tbl : (int, int) Hashtbl.t =
    Hashtbl.create (List.length blockdata)
  in
  List.iter
    (fun (g, v) ->
      Hashtbl.replace blockdata_tbl (Prog.Var.to_int g) (P.of_t v))
    blockdata;

  (* Records by (caller index, cs_index), dense rows; [None] = the site's
     procedure has not been analysed yet (optimistic: no contribution). *)
  let records : record option array array =
    Array.init n (fun i -> Array.make (Callgraph.n_call_sites pcg nodes.(i)) None)
  in

  let in_edges = Array.map (fun pid -> Callgraph.in_edges pcg pid) nodes in
  let forward = Callgraph.forward_order pcg in
  let scc_runs = ref 0 in

  let pass () =
    let any_change = ref false in
    Array.iter
      (fun (pid : Prog.Proc.id) ->
        let i = (pid :> int) in
        let proc = Prog.proc_name db pid in
        let nf = nf.(i) in
        let gs = gids.(i) in
        let facc = Array.make nf P.top in
        let gacc = Array.make (Array.length gs) P.top in
        (* Meet every recorded executable call into [proc], copy bindings
           evaluated against the calling procedure's current entries —
           same-pass for forward edges, previous-pass for back edges. *)
        Array.iter
          (fun (e : Callgraph.edge) ->
            let ci = (e.Callgraph.caller :> int) in
            match records.(ci).(e.Callgraph.cs_index) with
            | None -> ()
            | Some r when not r.rec_exec -> ()
            | Some r ->
                Array.iteri
                  (fun j w ->
                    if j < nf then
                      facc.(j) <- P.meet facc.(j) (eval_word ci w))
                  r.rec_args;
                Array.iter
                  (fun (g, w) ->
                    let k = gfind i (Prog.Var.to_int g) in
                    if k >= 0 then gacc.(k) <- P.meet gacc.(k) (eval_word ci w))
                  r.rec_globals)
          in_edges.(i);
        (* [main]'s globals come from block data alone — calls into main
           are necessarily back edges and are deliberately overridden,
           exactly as {!Fs_icp} does. *)
        let is_main = String.equal proc main in
        if is_main then
          for k = 0 to Array.length gs - 1 do
            gacc.(k) <-
              (match
                 Hashtbl.find_opt blockdata_tbl (Prog.Var.to_int gs.(k))
               with
              | Some w -> w
              | None -> P.bot)
          done;
        (* ⊤ after all contributions = no executable call reaches the
           slot: unknown, not a dead-code constant. *)
        for j = 0 to nf - 1 do
          if facc.(j) = P.top then facc.(j) <- P.bot
        done;
        for k = 0 to Array.length gacc - 1 do
          if gacc.(k) = P.top then gacc.(k) <- P.bot
        done;
        if
          (not visited.(i))
          || facc <> formals.(i)
          || gacc <> gvals.(i)
        then begin
          any_change := true;
          formals.(i) <- facc;
          gvals.(i) <- gacc;
          visited.(i) <- true
        end;
        (* One kernel run: constant entry slots bind to their constant,
           every other formal/closure-global to its own copy word.  The
           entry vector repeats between converging passes, so reruns are
           memo hits. *)
        let entry_env (v : Ir.var) : int =
          match v.Ir.vkind with
          | Ir.Formal j ->
              if j >= nf then P.bot
              else
                let w = formals.(i).(j) in
                if P.is_const w then w else P.copy j
          | Ir.Global -> (
              let k = gfind i (Prog.Var.to_int v.Ir.vid) in
              if k >= 0 then begin
                let w = gvals.(i).(k) in
                if P.is_const w then w else P.copy (nf + k)
              end
              else if is_main then
                match
                  Hashtbl.find_opt blockdata_tbl (Prog.Var.to_int v.Ir.vid)
                with
                | Some w -> w
                | None -> P.bot
              else P.bot)
          | Ir.Local | Ir.Temp -> P.bot
        in
        let ssa = Context.ssa_at ctx pid in
        let config = { Scc.default_config with Scc.entry_env } in
        let res = Scc.run ~config ssa in
        incr scc_runs;
        List.iter
          (fun (b, _, (c : Ssa.call)) ->
            let rec_exec = res.Scc.block_executable.(b) in
            let keep w =
              if P.is_copy w then w else Context.censor_w ctx w
            in
            let rec_args =
              Array.mapi (fun j _ -> keep (Scc.arg_value_w res c j)) c.Ssa.c_args
            in
            let rec_globals =
              Array.map
                (fun ((g : Ir.var), (nm : Ssa.name)) ->
                  (g.Ir.vid, keep res.Scc.values.(nm.Ssa.id)))
                c.Ssa.c_global_uses
            in
            records.(i).(c.Ssa.c_cs_id) <-
              Some { rec_exec; rec_args; rec_globals })
          (Ssa.call_sites ssa))
      forward;
    !any_change
  in
  let passes = ref 1 in
  while pass () && !passes < max_passes do
    incr passes
  done;
  Trace.add c_passes !passes;

  (* Assemble the solution against the {e final} entry tables; no copy
     word survives past this point. *)
  let entries =
    Prog.tbl_init db (fun pid ->
        let i = (pid :> int) in
        let pe_formals = Array.map P.to_t formals.(i) in
        let pe_globals =
          let acc = ref [] in
          for k = Array.length gids.(i) - 1 downto 0 do
            acc := (gids.(i).(k), P.to_t gvals.(i).(k)) :: !acc
          done;
          !acc
        in
        { Solution.pe_formals; pe_globals })
  in
  let call_records =
    Array.to_list nodes
    |> List.concat_map (fun (pid : Prog.Proc.id) ->
           let i = (pid :> int) in
           let out = Callgraph.out_edges pcg pid in
           let acc = ref [] in
           Array.iteri
             (fun cs_index slot ->
               match slot with
               | None -> ()
               | Some r ->
                   let boxed w =
                     if r.rec_exec then P.to_t (eval_word i w)
                     else Lattice.Top
                   in
                   let cr =
                     {
                       Solution.cr_caller = pid;
                       cr_cs_index = cs_index;
                       cr_callee = out.(cs_index).Callgraph.callee;
                       cr_executable = r.rec_exec;
                       cr_args = Array.map boxed r.rec_args;
                       cr_globals =
                         Array.to_list r.rec_globals
                         |> List.map (fun (g, w) -> (g, boxed w));
                     }
                   in
                   acc := cr :: !acc)
             records.(i);
           List.rev !acc)
  in
  Solution.make ~method_name ~db ~entries ~call_records ~scc_runs:!scc_runs
    ~scc_results:(Prog.tbl db None)

let solve ?jobs (ctx : Context.t) : Solution.t =
  Trace.next_epoch ();
  Trace.span "cc:solve" (fun () -> solve_body ?jobs ctx)
