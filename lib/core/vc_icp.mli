(** Value-context-sensitive interprocedural propagation: each procedure
    is analysed once per distinct packed entry vector (the SCC kernel's
    entry-vector memo promoted to method semantics), with a bounded
    per-procedure context table that collapses to the flow-sensitive
    single-meet treatment on blowup.  [fs ⊑ vc] in the oracle's precision
    order.  See the implementation header for the full story. *)

val method_name : string

(** Distinct entry contexts a procedure may hold before falling back to
    the merged (flow-sensitive) treatment. *)
val context_budget : int

(** The value-context solution.  [jobs] is accepted for symmetry with the
    other methods and ignored — the context worklist drains sequentially,
    so the result is trivially identical for every value. *)
val solve : ?jobs:int -> Context.t -> Solution.t
