(** Jump-function interprocedural constant propagation — the baselines the
    paper compares against (Callahan–Cooper–Kennedy–Torczon, SIGPLAN '86;
    Grove–Torczon, PLDI '93).

    A {e jump function} for argument position [j] of a call site summarises
    the value of the actual as a function of the {e formals of the calling
    procedure}.  After jump functions are built, a separate optimistic
    propagation pass runs over the call graph: evaluate each call site's
    jump functions under the caller's current formal values and meet the
    results into the callee's formals.

    The four variants, in increasing precision (paper Figure 1):

    - {b literal}: only literal actuals ([Jconst]); everything else ⊥.
    - {b intra}: the {e Intraprocedural Constant} jump function — a
      flow-sensitive intraprocedural constant propagation (our SCC with an
      all-unknown entry environment) is applied first; actuals it proves
      constant become [Jconst].
    - {b pass-through}: intra, plus an actual that is an {e unmodified}
      formal of the caller becomes the identity function [Jformal] (we
      detect this precisely: its SSA operand is version 0 of the formal,
      i.e. unmodified along every path reaching the call).
    - {b polynomial}: intra, plus actuals that are polynomial functions of
      the caller's formals ([Jpoly]), computed by a symbolic evaluation
      over SSA restricted to the blocks the intra analysis proves live.

    Globals are {e not} propagated by these baselines: "It is not clear how
    globals can be efficiently handled in this framework.  The creation of
    a jump function for each global variable for each call site can add
    substantial overhead" (paper §5); accordingly Grove–Torczon-style
    results in Tables 3–5 carry (almost) no global constants.

    Return jump functions are likewise omitted, matching the paper's use of
    Grove–Torczon's "No Return Jump Function" results for comparison.

    The propagation step iterates to a fixpoint, so unlike the historical
    implementations ("their method does not handle call graph cycles") the
    baselines here are well-defined on recursive programs too. *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_cfg
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_ipa
open Fsicp_scc

type variant = Literal | Intra | Pass_through | Polynomial

let variant_name = function
  | Literal -> "literal"
  | Intra -> "intra"
  | Pass_through -> "pass-through"
  | Polynomial -> "polynomial"

let all_variants = [ Literal; Intra; Pass_through; Polynomial ]

type jf =
  | Jconst of Value.t
  | Jformal of int  (** pass-through of the caller's i-th formal *)
  | Jpoly of Poly.t  (** polynomial in the caller's formals *)
  | Jbot

let pp_jf ppf = function
  | Jconst v -> Value.pp ppf v
  | Jformal i -> Fmt.pf ppf "f%d" i
  | Jpoly p -> Poly.pp ppf p
  | Jbot -> Fmt.string ppf "⊥"

(* ------------------------------------------------------------------ *)
(* Symbolic polynomial evaluation over SSA                             *)
(* ------------------------------------------------------------------ *)

type pvalue = PTop | PPoly of Poly.t | PBot

let pmeet a b =
  match (a, b) with
  | PTop, x | x, PTop -> x
  | PBot, _ | _, PBot -> PBot
  | PPoly p, PPoly q -> if Poly.equal p q then a else PBot

let pequal a b =
  match (a, b) with
  | PTop, PTop | PBot, PBot -> true
  | PPoly p, PPoly q -> Poly.equal p q
  | (PTop | PPoly _ | PBot), _ -> false

(** Polynomial abstract values for every SSA name of [ssa], restricted to
    the blocks and edges the intra-procedural SCC result [intra] proved
    executable (so the polynomial jump function subsumes the intra one). *)
let polynomial_values (ssa : Ssa.proc) (intra : Scc.result) : pvalue array =
  let values = Array.make (max 1 ssa.Ssa.n_names) PTop in
  (* Entry names: formals are themselves; everything else is unknown. *)
  Array.iter
    (fun ((v : Ir.var), (n : Ssa.name)) ->
      values.(n.Ssa.id) <-
        (match v.Ir.vkind with
        | Ir.Formal i -> PPoly (Poly.formal i)
        | Ir.Global | Ir.Local | Ir.Temp -> PBot))
    ssa.Ssa.entry_names;
  let operand_value = function
    | Ssa.Oconst v -> PPoly (Poly.const v)
    | Ssa.Oname n -> values.(n.Ssa.id)
  in
  let lift f a b =
    match (a, b) with
    | PBot, _ | _, PBot -> PBot
    | PTop, _ | _, PTop -> PTop
    | PPoly p, PPoly q -> ( match f p q with Some r -> PPoly r | None -> PBot)
  in
  let eval_binop op a b =
    match op with
    | Ops.Add -> lift Poly.add a b
    | Ops.Sub -> lift Poly.sub a b
    | Ops.Mul -> lift Poly.mul a b
    | Ops.Div | Ops.Mod | Ops.Eq | Ops.Ne | Ops.Lt | Ops.Le | Ops.Gt
    | Ops.Ge | Ops.And | Ops.Or -> (
        (* Not polynomial: only constant folding applies. *)
        match (a, b) with
        | PBot, _ | _, PBot -> PBot
        | PTop, _ | _, PTop -> PTop
        | PPoly p, PPoly q -> (
            match (Poly.is_const p, Poly.is_const q) with
            | Some x, Some y -> (
                match Value.eval_binop op x y with
                | Some r -> PPoly (Poly.const r)
                | None -> PBot)
            | _ -> PBot))
  in
  let eval_unop op a =
    match op with
    | Ops.Neg -> (
        match a with
        | PBot -> PBot
        | PTop -> PTop
        | PPoly p -> PPoly (Poly.neg p))
    | Ops.Not -> (
        match a with
        | PBot -> PBot
        | PTop -> PTop
        | PPoly p -> (
            match Poly.is_const p with
            | Some v -> (
                match Value.eval_unop Ops.Not v with
                | Some r -> PPoly (Poly.const r)
                | None -> PBot)
            | None -> PBot))
  in
  let edge_exec e = Scc.edge_bit intra e in
  let set (n : Ssa.name) v changed =
    if not (pequal values.(n.Ssa.id) v) then begin
      values.(n.Ssa.id) <- v;
      changed := true
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun b (blk : Ssa.block) ->
        if intra.Scc.block_executable.(b) then begin
          Array.iter
            (fun (ph : Ssa.phi) ->
              let v = ref PTop in
              Array.iteri
                (fun k (_, (n : Ssa.name)) ->
                  if edge_exec ph.Ssa.p_edges.(k) then
                    v := pmeet !v values.(n.Ssa.id))
                ph.Ssa.p_args;
              let v = !v in
              set ph.Ssa.p_name v changed)
            blk.Ssa.phis;
          Array.iter
            (fun ins ->
              match ins with
              | Ssa.Assign (n, rhs) ->
                  let v =
                    match rhs with
                    | Ssa.Copy o -> operand_value o
                    | Ssa.Unop (op, o) -> eval_unop op (operand_value o)
                    | Ssa.Binop (op, a, c) ->
                        eval_binop op (operand_value a) (operand_value c)
                  in
                  set n v changed
              | Ssa.Kill kills ->
                  Array.iter (fun (_, n) -> set n PBot changed) kills
              | Ssa.Call c ->
                  Array.iter (fun (_, n) -> set n PBot changed) c.Ssa.c_defs
              | Ssa.Print _ -> ())
            blk.Ssa.instrs
        end)
      ssa.Ssa.blocks
  done;
  values

(* ------------------------------------------------------------------ *)
(* Jump function construction                                          *)
(* ------------------------------------------------------------------ *)

type site_jfs = {
  sj_caller : Prog.Proc.id;
  sj_cs_index : int;
  sj_callee : Prog.Proc.id;
  sj_live : bool;  (** false when the intra analysis proved the site dead *)
  sj_jfs : jf array;
}

(** Build the jump functions of every call site of every reachable
    procedure, for the given [variant].  Returns the sites and the number
    of flow-sensitive intraprocedural analyses used. *)
let build_jump_functions (ctx : Context.t) (variant : variant) :
    site_jfs list * int =
  let pcg = ctx.Context.pcg in
  let scc_runs = ref 0 in
  let sites = ref [] in
  Array.iter
    (fun pid ->
      let proc = Callgraph.proc_name pcg pid in
      match variant with
      | Literal ->
          (* Purely syntactic; no intraprocedural analysis. *)
          let s = Summary.find ctx.Context.summaries proc in
          List.iter
            (fun (c : Summary.call_summary) ->
              let sj_jfs =
                Array.map
                  (fun arg ->
                    match arg with
                    | Summary.Alit v -> Jconst v
                    | Summary.Aformal _ | Summary.Aglobal _
                    | Summary.Alocal _ | Summary.Aexpr -> Jbot)
                  c.Summary.cs_args
              in
              sites :=
                {
                  sj_caller = pid;
                  sj_cs_index = c.Summary.cs_index;
                  sj_callee = Callgraph.proc_id_exn pcg c.Summary.cs_callee;
                  sj_live = true;
                  sj_jfs;
                }
                :: !sites)
            s.Summary.ps_calls
      | Intra | Pass_through | Polynomial ->
          let ssa = Context.ssa_at ctx pid in
          let intra = Scc.run ssa in
          incr scc_runs;
          let poly_values =
            match variant with
            | Polynomial -> Some (polynomial_values ssa intra)
            | Literal | Intra | Pass_through -> None
          in
          List.iter
            (fun (b, _, (c : Ssa.call)) ->
              let live = intra.Scc.block_executable.(b) in
              let sj_jfs =
                Array.mapi
                  (fun j (a : Ssa.ssa_arg) ->
                    if not live then Jbot
                    else
                      match Scc.arg_value intra c j with
                      | Lattice.Const v -> Jconst v
                      | Lattice.Top | Lattice.Bot -> (
                          match variant with
                          | Intra | Literal -> Jbot
                          | Pass_through -> (
                              match a.Ssa.sa_operand with
                              | Ssa.Oname n when n.Ssa.ver = 0 -> (
                                  match n.Ssa.base.Ir.vkind with
                                  | Ir.Formal i -> Jformal i
                                  | Ir.Local | Ir.Global | Ir.Temp -> Jbot)
                              | Ssa.Oname _ | Ssa.Oconst _ -> Jbot)
                          | Polynomial -> (
                              let pv =
                                match a.Ssa.sa_operand with
                                | Ssa.Oconst v -> PPoly (Poly.const v)
                                | Ssa.Oname n ->
                                    (Option.get poly_values).(n.Ssa.id)
                              in
                              match pv with
                              | PPoly p -> (
                                  match Poly.is_const p with
                                  | Some v -> Jconst v
                                  | None -> Jpoly p)
                              | PTop | PBot -> Jbot)))
                  c.Ssa.c_args
              in
              sites :=
                {
                  sj_caller = pid;
                  sj_cs_index = c.Ssa.c_cs_id;
                  sj_callee = Callgraph.proc_id_exn pcg c.Ssa.c_callee;
                  sj_live = live;
                  sj_jfs;
                }
                :: !sites)
            (Ssa.call_sites ssa))
    (Callgraph.forward_order pcg);
  (List.rev !sites, !scc_runs)

(* ------------------------------------------------------------------ *)
(* Interprocedural propagation over the jump functions                 *)
(* ------------------------------------------------------------------ *)

module P = Lattice.P

(* Caller formals are packed lattice words; the fixpoint below meets packed
   words in flat int arrays, so evaluation answers packed too. *)
let eval_jf (ctx : Context.t) (jf : jf) (caller_formals : int array) : int =
  let w =
    match jf with
    | Jconst v -> P.of_value v
    | Jbot -> P.bot
    | Jformal i ->
        if i < Array.length caller_formals then caller_formals.(i) else P.bot
    | Jpoly p ->
        let used = Poly.formals_used p in
        if
          List.exists
            (fun i ->
              i >= Array.length caller_formals || caller_formals.(i) = P.bot)
            used
        then P.bot
        else if List.exists (fun i -> caller_formals.(i) = P.top) used then
          P.top
        else
          (* Every used formal is a constant after the two guards above. *)
          let env i = Some (P.const_value caller_formals.(i)) in
          (match Poly.eval p env with
          | Some v -> P.of_value v
          | None -> P.bot)
  in
  Context.censor_w ctx w

(** Solve the given jump-function variant; returns a {!Solution} with
    formal constants only (no globals — see the module comment). *)
let solve (ctx : Context.t) (variant : variant) : Solution.t =
  let pcg = ctx.Context.pcg in
  let db = pcg.Callgraph.db in
  let sites, scc_runs = build_jump_functions ctx variant in
  let formal_values : int array Prog.Proc.Tbl.t =
    Prog.tbl_init db (fun pid ->
        let s =
          Summary.find ctx.Context.summaries (Prog.proc_name db pid)
        in
        Array.make (List.length s.Summary.ps_formals) P.top)
  in
  let sites_of : site_jfs list array =
    Array.make (Callgraph.n_procs pcg) []
  in
  List.iter
    (fun sj ->
      let c = (sj.sj_caller :> int) in
      sites_of.(c) <- sj :: sites_of.(c))
    sites;
  (* Optimistic fixpoint: evaluate jump functions under the caller's current
     formal values; iterate while anything lowers. *)
  let work : Prog.Proc.id Queue.t = Queue.create () in
  Array.iter (fun p -> Queue.add p work) (Callgraph.forward_order pcg);
  while not (Queue.is_empty work) do
    let caller = Queue.take work in
    let caller_formals = Prog.Proc.Tbl.get formal_values caller in
    List.iter
      (fun sj ->
        if sj.sj_live then begin
          let callee_formals =
            Prog.Proc.Tbl.get formal_values sj.sj_callee
          in
          let changed = ref false in
          Array.iteri
            (fun j jf ->
              if j < Array.length callee_formals then begin
                let w = eval_jf ctx jf caller_formals in
                let merged = P.meet callee_formals.(j) w in
                if merged <> callee_formals.(j) then begin
                  callee_formals.(j) <- merged;
                  changed := true
                end
              end)
            sj.sj_jfs;
          if !changed then Queue.add sj.sj_callee work
        end)
      sites_of.((caller :> int))
  done;

  let entries =
    Prog.tbl_init db (fun pid ->
        let pe_formals =
          Prog.Proc.Tbl.get formal_values pid
          |> Array.map (fun w -> if w = P.top then Lattice.Bot else P.to_t w)
        in
        (* Globals are not handled by jump-function methods. *)
        let pe_globals =
          Modref.call_global_refs ctx.Context.modref
            ~callee:(Prog.proc_name db pid)
          |> List.map (fun (gv : Ir.var) -> (gv.Ir.vid, Lattice.Bot))
          |> List.sort (fun (a, _) (b, _) -> Prog.Var.compare a b)
        in
        { Solution.pe_formals; pe_globals })
  in
  (* Call-site records: the evaluated jump-function value per argument. *)
  let call_records =
    List.map
      (fun sj ->
        let caller_formals =
          (Prog.Proc.Tbl.get formal_values sj.sj_caller
          |> Array.map (fun w -> if w = P.top then P.bot else w))
        in
        {
          Solution.cr_caller = sj.sj_caller;
          cr_cs_index = sj.sj_cs_index;
          cr_callee = sj.sj_callee;
          cr_executable = sj.sj_live;
          cr_args =
            Array.map
              (fun jf -> P.to_t (eval_jf ctx jf caller_formals))
              sj.sj_jfs;
          cr_globals = [];
        })
      sites
  in
  Solution.make ~method_name:(variant_name variant) ~db ~entries
    ~call_records ~scc_runs ~scc_results:(Prog.tbl db None)
