(** The result of an interprocedural constant propagation method.

    All methods (flow-insensitive, flow-sensitive, the jump-function
    baselines, the reference iterative solver) produce the same shape, which
    the metrics ({!Metrics}), the transformation ({!Transform}) and the
    tests consume uniformly:

    - per reachable procedure, the lattice value of every formal at entry
      (Table 2's "interprocedural propagated constants");
    - per reachable procedure, the lattice value at entry of the globals the
      procedure may reference;
    - per call site, the value of every argument and relevant global at the
      site as established by the method (Table 1's "call site constant
      candidates"). *)

open Fsicp_scc

type callsite_record = {
  cr_caller : string;
  cr_cs_index : int;  (** textual call-site index within the caller *)
  cr_callee : string;
  cr_executable : bool;
      (** could the method prove the site unreachable?  Flow-insensitive
          methods always say [true]; the flow-sensitive method marks sites
          in SCC-dead blocks [false], and such sites propagate nothing *)
  cr_args : Lattice.t array;  (** value of each argument at the site *)
  cr_globals : (string * Lattice.t) list;
      (** value at the site of each global in the callee's REF closure *)
}

type proc_entry = {
  pe_formals : Lattice.t array;
  pe_globals : (string * Lattice.t) list;
      (** entry value of each global the procedure may reference; globals
          not listed are unknown (bottom) *)
}

type t = {
  method_name : string;
  entries : (string, proc_entry) Hashtbl.t;  (** per reachable procedure *)
  call_records : callsite_record list;
  call_index : (string * int, callsite_record) Hashtbl.t;
      (** the same records keyed by (caller, cs_index); built by {!make} in
          the same pass as the list, so {!find_call_record} is O(1) *)
  scc_runs : int;
      (** number of flow-sensitive intraprocedural analyses performed — the
          paper's headline is that the FS method needs exactly one per
          procedure *)
  scc_results : (string, Scc.result) Hashtbl.t;
      (** the per-procedure SCC runs, when the method performs them (empty
          for flow-insensitive methods) *)
}

(** Assemble a solution, indexing the call records by (caller, cs_index) in
    the same pass.  When duplicates exist the first record wins, matching
    the former linear scan. *)
let make ~method_name ~entries ~call_records ~scc_runs ~scc_results : t =
  let call_index = Hashtbl.create (2 * List.length call_records + 1) in
  List.iter
    (fun cr ->
      let key = (cr.cr_caller, cr.cr_cs_index) in
      if not (Hashtbl.mem call_index key) then Hashtbl.add call_index key cr)
    call_records;
  { method_name; entries; call_records; call_index; scc_runs; scc_results }

let empty_entry = { pe_formals = [||]; pe_globals = [] }

let entry t proc =
  Option.value (Hashtbl.find_opt t.entries proc) ~default:empty_entry

(** Entry lattice value of formal [i] of [proc]. *)
let formal_value t proc i : Lattice.t =
  let e = entry t proc in
  if i < Array.length e.pe_formals then e.pe_formals.(i) else Lattice.Bot

(** Entry lattice value of global [g] in [proc]. *)
let global_value t proc g : Lattice.t =
  match List.assoc_opt g (entry t proc).pe_globals with
  | Some v -> v
  | None -> Lattice.Bot

(** Constant formals, as [(proc, index, value)]. *)
let constant_formals t : (string * int * Fsicp_lang.Value.t) list =
  Hashtbl.fold
    (fun proc e acc ->
      let acc' = ref acc in
      Array.iteri
        (fun i v ->
          match v with
          | Lattice.Const value -> acc' := (proc, i, value) :: !acc'
          | Lattice.Top | Lattice.Bot -> ())
        e.pe_formals;
      !acc')
    t.entries []
  |> List.sort compare

(** Constant globals at procedure entries, as [(proc, global, value)]. *)
let constant_globals t : (string * string * Fsicp_lang.Value.t) list =
  Hashtbl.fold
    (fun proc e acc ->
      List.fold_left
        (fun acc (g, v) ->
          match v with
          | Lattice.Const value -> (proc, g, value) :: acc
          | Lattice.Top | Lattice.Bot -> acc)
        acc e.pe_globals)
    t.entries []
  |> List.sort compare

let find_call_record t ~caller ~cs_index =
  Hashtbl.find_opt t.call_index (caller, cs_index)

let pp ppf t =
  Fmt.pf ppf "method %s (%d SCC runs):@\n" t.method_name t.scc_runs;
  List.iter
    (fun (p, i, v) ->
      Fmt.pf ppf "  %s formal#%d = %a@\n" p i Fsicp_lang.Value.pp v)
    (constant_formals t);
  List.iter
    (fun (p, g, v) ->
      Fmt.pf ppf "  %s global %s = %a@\n" p g Fsicp_lang.Value.pp v)
    (constant_globals t)
