(** The result of an interprocedural constant propagation method.

    All methods (flow-insensitive, flow-sensitive, the jump-function
    baselines, the reference iterative solver) produce the same shape, which
    the metrics ({!Metrics}), the transformation ({!Transform}) and the
    tests consume uniformly:

    - per reachable procedure, the lattice value of every formal at entry
      (Table 2's "interprocedural propagated constants");
    - per reachable procedure, the lattice value at entry of the globals the
      procedure may reference;
    - per call site, the value of every argument and relevant global at the
      site as established by the method (Table 1's "call site constant
      candidates").

    Per-procedure state is dense: {!Prog.Proc.Tbl} arrays indexed by the
    program database's procedure ids, and a per-caller [cs_index]-indexed
    call-record index.  Names are recovered from the database only in the
    user-facing accessors ({!constant_formals}, {!pp}, ...). *)

open Fsicp_prog
open Fsicp_scc

type callsite_record = {
  cr_caller : Prog.Proc.id;
  cr_cs_index : int;  (** textual call-site index within the caller *)
  cr_callee : Prog.Proc.id;
  cr_executable : bool;
      (** could the method prove the site unreachable?  Flow-insensitive
          methods always say [true]; the flow-sensitive method marks sites
          in SCC-dead blocks [false], and such sites propagate nothing *)
  cr_args : Lattice.t array;  (** value of each argument at the site *)
  cr_globals : (Prog.Var.id * Lattice.t) list;
      (** value at the site of each global in the callee's REF closure,
          keyed by interned variable id *)
}

type proc_entry = {
  pe_formals : Lattice.t array;
  pe_globals : (Prog.Var.id * Lattice.t) list;
      (** entry value of each global the procedure may reference, keyed by
          interned variable id and sorted by it; globals not listed are
          unknown (bottom) *)
}

type t = {
  method_name : string;
  db : Prog.t;
  entries : proc_entry Prog.Proc.Tbl.t;  (** per reachable procedure *)
  call_records : callsite_record list;
  call_index : callsite_record option array Prog.Proc.Tbl.t;
      (** the same records, by caller id and [cs_index]; built by {!make}
          in the same pass as the list, so {!find_call_record} is an array
          load *)
  scc_runs : int;
      (** number of flow-sensitive intraprocedural analyses performed — the
          paper's headline is that the FS method needs exactly one per
          procedure *)
  scc_results : Scc.result option Prog.Proc.Tbl.t;
      (** the per-procedure SCC runs, when the method performs them ([None]
          everywhere for flow-insensitive methods) *)
}

(** Assemble a solution, indexing the call records by (caller, cs_index) in
    the same pass.  When duplicates exist the first record wins, matching
    the former linear scan. *)
let make ~method_name ~db ~entries ~call_records ~scc_runs ~scc_results : t =
  (* Row sizes: the maximum cs_index per caller among the records. *)
  let n = Prog.n_procs db in
  let width = Array.make n 0 in
  List.iter
    (fun cr ->
      let c = (cr.cr_caller :> int) in
      width.(c) <- max width.(c) (cr.cr_cs_index + 1))
    call_records;
  let call_index = Prog.tbl_init db (fun pid -> Array.make width.((pid :> int)) None) in
  List.iter
    (fun cr ->
      let row = Prog.Proc.Tbl.get call_index cr.cr_caller in
      if row.(cr.cr_cs_index) = None then row.(cr.cr_cs_index) <- Some cr)
    call_records;
  { method_name; db; entries; call_records; call_index; scc_runs; scc_results }

let empty_entry = { pe_formals = [||]; pe_globals = [] }
let proc_name t pid = Prog.proc_name t.db pid
let entry_at t pid = Prog.Proc.Tbl.get t.entries pid

let entry t proc =
  match Prog.proc_id t.db proc with
  | Some pid -> entry_at t pid
  | None -> empty_entry

let entry_opt t proc =
  Option.map (entry_at t) (Prog.proc_id t.db proc)

(** Entry lattice value of formal [i] of [proc]. *)
let formal_value t proc i : Lattice.t =
  let e = entry t proc in
  if i < Array.length e.pe_formals then e.pe_formals.(i) else Lattice.Bot

(** Entry lattice value of global [g] (a source spelling) in [proc]. *)
let global_value t proc g : Lattice.t =
  match List.assoc_opt (Prog.Var.intern g) (entry t proc).pe_globals with
  | Some v -> v
  | None -> Lattice.Bot

(** Constant formals, as [(proc, index, value)]. *)
let constant_formals t : (string * int * Fsicp_lang.Value.t) list =
  Prog.Proc.Tbl.fold
    (fun pid e acc ->
      let proc = proc_name t pid in
      let acc' = ref acc in
      Array.iteri
        (fun i v ->
          match v with
          | Lattice.Const value -> acc' := (proc, i, value) :: !acc'
          | Lattice.Top | Lattice.Bot -> ())
        e.pe_formals;
      !acc')
    t.entries []
  |> List.sort compare

(** Constant globals at procedure entries, as [(proc, global, value)]. *)
let constant_globals t : (string * string * Fsicp_lang.Value.t) list =
  Prog.Proc.Tbl.fold
    (fun pid e acc ->
      let proc = proc_name t pid in
      List.fold_left
        (fun acc (g, v) ->
          match v with
          | Lattice.Const value -> (proc, Prog.Var.name g, value) :: acc
          | Lattice.Top | Lattice.Bot -> acc)
        acc e.pe_globals)
    t.entries []
  |> List.sort compare

let find_call_record t ~caller ~cs_index =
  let row = Prog.Proc.Tbl.get t.call_index caller in
  if cs_index < Array.length row then row.(cs_index) else None

(** Canonical full print — every field down to the per-procedure SCC
    results — keyed by {e names}, never by the ids a particular context
    minted, so digests of independent solves of the same program are
    comparable.  Two solutions are byte-identical iff their digests are
    equal: the incremental engine's correctness oracle and the serve
    daemon's [digest] request are both this function. *)
let digest (s : t) : string =
  let b = Buffer.create 4096 in
  let db = s.db in
  Buffer.add_string b
    (Printf.sprintf "method %s scc_runs %d\n" s.method_name s.scc_runs);
  Array.iter
    (fun pid ->
      let e = entry_at s pid in
      Buffer.add_string b (Printf.sprintf "entry %s:" (Prog.proc_name db pid));
      Array.iter
        (fun v ->
          Buffer.add_string b (Printf.sprintf " %s" (Lattice.to_string v)))
        e.pe_formals;
      List.iter
        (fun (g, v) ->
          Buffer.add_string b
            (Printf.sprintf " %s=%s" (Prog.Var.name g) (Lattice.to_string v)))
        e.pe_globals;
      Buffer.add_char b '\n')
    (Prog.procs db);
  List.iter
    (fun cr ->
      Buffer.add_string b
        (Printf.sprintf "call %s#%d->%s exec=%b:"
           (Prog.proc_name db cr.cr_caller)
           cr.cr_cs_index
           (Prog.proc_name db cr.cr_callee)
           cr.cr_executable);
      Array.iter
        (fun v ->
          Buffer.add_string b (Printf.sprintf " %s" (Lattice.to_string v)))
        cr.cr_args;
      List.iter
        (fun (g, v) ->
          Buffer.add_string b
            (Printf.sprintf " %s=%s" (Prog.Var.name g) (Lattice.to_string v)))
        cr.cr_globals;
      Buffer.add_char b '\n')
    s.call_records;
  Array.iter
    (fun pid ->
      match Prog.Proc.Tbl.get s.scc_results pid with
      | None -> ()
      | Some (r : Scc.result) ->
          Buffer.add_string b
            (Printf.sprintf "scc %s values:" (Prog.proc_name db pid));
          Array.iter
            (fun w ->
              Buffer.add_string b
                (Printf.sprintf " %s" (Lattice.to_string (Lattice.P.to_t w))))
            r.Scc.values;
          Buffer.add_string b " blocks:";
          Array.iter
            (fun x -> Buffer.add_char b (if x then '1' else '0'))
            r.Scc.block_executable;
          Buffer.add_string b " edges:";
          Bytes.iter
            (fun c ->
              Buffer.add_string b (Printf.sprintf "%02x" (Char.code c)))
            r.Scc.edge_exec;
          Buffer.add_char b '\n')
    (Prog.procs db);
  Buffer.contents b

let pp ppf t =
  Fmt.pf ppf "method %s (%d SCC runs):@\n" t.method_name t.scc_runs;
  List.iter
    (fun (p, i, v) ->
      Fmt.pf ppf "  %s formal#%d = %a@\n" p i Fsicp_lang.Value.pp v)
    (constant_formals t);
  List.iter
    (fun (p, g, v) ->
      Fmt.pf ppf "  %s global %s = %a@\n" p g Fsicp_lang.Value.pp v)
    (constant_globals t)
