(** Procedure inlining (the paper's other backward-walk transformation).
    By-reference actuals substitute textually for formals; other actuals
    bind fresh initialised temporaries; callee locals are renamed apart and
    re-zeroed per entry.  Procedures containing [return], recursive
    procedures, and bodies above [max_body] statements are left alone. *)

open Fsicp_lang

val body_size : Ast.stmt list -> int
val has_return : Ast.stmt list -> bool
val inlinable : Context.t -> max_body:int -> Ast.proc -> bool

(** Inline every eligible call site (one level); returns the new program
    and the number of calls expanded.  Semantics-preserving
    (property-tested). *)
val inline_program : Context.t -> ?max_body:int -> unit -> Ast.program * int
