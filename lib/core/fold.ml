(** AST-level constant folding and dead-branch elimination, driven by an
    interprocedural solution.

    This is the "transformed intermediate representation" half of the
    paper's backward walk: after {!Transform.insert_entry_constants} has
    made the interprocedural constants explicit, traditional constant
    folding replaces constant uses with literals, prunes branches whose
    condition folds, and drops loops that never execute.  The output is a
    valid MiniFort program with identical observable behaviour (property
    tested against the interpreter).

    The folder runs a small abstract interpretation over the statement
    tree: an environment maps variables to lattice values; [if] joins both
    arms; [while] iterates the body's effect to a fixpoint before folding
    the body (lattice height is finite so a few passes suffice); calls kill
    whatever the interprocedural MOD information says the callee may
    write. *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_ipa
open Fsicp_scc

module Env = Map.Make (String)

type env = Lattice.t Env.t

let lookup env x = Option.value (Env.find_opt x env) ~default:Lattice.Bot

let join (a : env) (b : env) : env =
  (* Pointwise meet; a variable missing on one side is unknown there. *)
  Env.merge
    (fun _ va vb ->
      match (va, vb) with
      | Some va, Some vb -> Some (Lattice.meet va vb)
      | Some _, None | None, Some _ -> Some Lattice.Bot
      | None, None -> None)
    a b

let env_equal (a : env) (b : env) = Env.equal Lattice.equal a b

let rec fold_expr (env : env) (e : Ast.expr) : Ast.expr * Lattice.t =
  match e with
  | Ast.Const v -> (e, Lattice.Const v)
  | Ast.Var x -> (
      match lookup env x with
      | Lattice.Const v -> (Ast.Const v, Lattice.Const v)
      | (Lattice.Top | Lattice.Bot) as l -> (e, l))
  | Ast.Unary (op, e1) -> (
      let e1', v1 = fold_expr env e1 in
      match Lattice.eval_unop op v1 with
      | Lattice.Const v -> (Ast.Const v, Lattice.Const v)
      | l -> (Ast.Unary (op, e1'), l))
  | Ast.Binary (op, l, r) -> (
      let l', vl = fold_expr env l in
      let r', vr = fold_expr env r in
      match Lattice.eval_binop op vl vr with
      | Lattice.Const v -> (Ast.Const v, Lattice.Const v)
      | lat -> (Ast.Binary (op, l', r'), lat))

type ctx = {
  modref : Modref.t;
  globals : string list;
  formals : string list;
  proc : string;
  alias_kills : string -> string list;
      (** names whose location a store to the given name may also write
          (reference-parameter aliasing) — they become unknown too *)
}

let assign_effect (c : ctx) (env : env) x v : env =
  let env = Env.add x v env in
  List.fold_left
    (fun env y -> Env.add y Lattice.Bot env)
    env (c.alias_kills x)

(* Abstract effect of a statement list on the environment, without
   rewriting; used to reach the loop fixpoint.  Returns None for
   environments of unreachable continuations (after [return]). *)
let rec abstract_block (c : ctx) (env : env option) (body : Ast.stmt list) :
    env option =
  List.fold_left (abstract_stmt c) env body

and abstract_stmt (c : ctx) (env : env option) (s : Ast.stmt) : env option =
  match env with
  | None -> None
  | Some env -> (
      match s.Ast.sdesc with
      | Ast.Assign (x, e) ->
          let _, v = fold_expr env e in
          Some (assign_effect c env x v)
      | Ast.Print _ -> Some env
      | Ast.Return -> None
      | Ast.If (cond, t, e) -> (
          let _, cv = fold_expr env cond in
          match cv with
          | Lattice.Const v when Value.truthy v ->
              abstract_block c (Some env) t
          | Lattice.Const _ -> abstract_block c (Some env) e
          | Lattice.Top | Lattice.Bot -> (
              let envt = abstract_block c (Some env) t in
              let enve = abstract_block c (Some env) e in
              match (envt, enve) with
              | None, x | x, None -> x
              | Some a, Some b -> Some (join a b)))
      | Ast.While (cond, body) ->
          let rec fix env_in =
            match abstract_block c (Some env_in) body with
            | None -> env_in
            | Some out ->
                let joined = join env_in out in
                if env_equal joined env_in then env_in else fix joined
          in
          (* Iterate to an actual fixpoint: each non-converged pass strictly
             lowers at least one variable in a height-2 lattice over the
             finitely many program variables, so this terminates — but it
             can need as many passes as there are variables (a chain of
             dependent assignments lowers one per pass), so a fixed
             iteration bound would silently return a non-fixpoint and fold
             stale constants into the loop body. *)
          let stable = fix env in
          let _, cv = fold_expr env cond in
          (match cv with
          | Lattice.Const v when not (Value.truthy v) ->
              Some env (* loop never entered *)
          | _ -> Some stable)
      | Ast.Call (q, args) ->
          (* Kill everything the callee may write: by-reference actuals
             whose formal is in the callee's MOD, and modified globals. *)
          let env = ref env in
          let kill x =
            env := Env.add x Lattice.Bot !env;
            (* Writing through x's location also invalidates anything that
               may share it. *)
            List.iter
              (fun y -> env := Env.add y Lattice.Bot !env)
              (c.alias_kills x)
          in
          List.iteri
            (fun j arg ->
              match arg with
              | Ast.Var x when Modref.formal_modified c.modref q j -> kill x
              | _ -> ())
            args;
          List.iter
            (fun g -> if Modref.global_modified_in c.modref q g then kill g)
            c.globals;
          Some !env)

let rec rewrite_block (c : ctx) (env : env option) (body : Ast.stmt list) :
    Ast.stmt list * env option =
  match body with
  | [] -> ([], env)
  | s :: rest -> (
      match env with
      | None -> ([], None) (* unreachable tail: drop *)
      | Some _ ->
          let s', env' = rewrite_stmt c env s in
          let rest', env'' = rewrite_block c env' rest in
          (s' @ rest', env''))

and rewrite_stmt (c : ctx) (env : env option) (s : Ast.stmt) :
    Ast.stmt list * env option =
  match env with
  | None -> ([], None)
  | Some env -> (
      match s.Ast.sdesc with
      | Ast.Assign (x, e) ->
          let e', v = fold_expr env e in
          ( [ { s with Ast.sdesc = Ast.Assign (x, e') } ],
            Some (assign_effect c env x v) )
      | Ast.Print e ->
          let e', _ = fold_expr env e in
          ([ { s with Ast.sdesc = Ast.Print e' } ], Some env)
      | Ast.Return -> ([ s ], None)
      | Ast.If (cond, t, e) -> (
          let cond', cv = fold_expr env cond in
          match cv with
          | Lattice.Const v when Value.truthy v -> rewrite_block c (Some env) t
          | Lattice.Const _ -> rewrite_block c (Some env) e
          | Lattice.Top | Lattice.Bot -> (
              let t', envt = rewrite_block c (Some env) t in
              let e', enve = rewrite_block c (Some env) e in
              let out =
                match (envt, enve) with
                | None, x | x, None -> x
                | Some a, Some b -> Some (join a b)
              in
              ([ { s with Ast.sdesc = Ast.If (cond', t', e') } ], out)))
      | Ast.While (cond, body) -> (
          let _, cv0 = fold_expr env cond in
          match cv0 with
          | Lattice.Const v when not (Value.truthy v) ->
              ([], Some env) (* never entered: drop the loop *)
          | _ ->
              (* Rewrite the body under the loop-stable environment. *)
              let stable =
                match
                  abstract_stmt c (Some env)
                    { s with Ast.sdesc = Ast.While (cond, body) }
                with
                | Some e -> e
                | None -> env
              in
              let cond', _ = fold_expr stable cond in
              let body', _ = rewrite_block c (Some stable) body in
              ([ { s with Ast.sdesc = Ast.While (cond', body') } ], Some stable)
          )
      | Ast.Call (q, args) ->
          (* Fold compound-expression arguments only: replacing a bare
             variable with a literal would change by-reference semantics. *)
          let args' =
            List.map
              (fun a ->
                match a with
                | Ast.Var _ -> a
                | a -> fst (fold_expr env a))
              args
          in
          let env' =
            abstract_stmt c (Some env)
              { s with Ast.sdesc = Ast.Call (q, args) }
          in
          ([ { s with Ast.sdesc = Ast.Call (q, args') } ], env'))

(** Fold a whole program using the entry constants of [solution].
    Procedures unreachable from main are left untouched. *)
let fold_program (ctx : Context.t) (solution : Solution.t) : Ast.program =
  let prog = ctx.Context.prog in
  let procs =
    List.map
      (fun (p : Ast.proc) ->
        match Solution.entry_opt solution p.Ast.pname with
        | None -> p
        | Some entry ->
            let formal_index x =
              let rec go i = function
                | [] -> None
                | f :: _ when String.equal f x -> Some i
                | _ :: tl -> go (i + 1) tl
              in
              go 0 p.Ast.formals
            in
            let alias_kills x =
              match formal_index x with
              | Some i ->
                  let nth_formal j = List.nth_opt p.Ast.formals j in
                  let ff =
                    Fsicp_ipa.Alias.formals_aliasing_formal
                      ctx.Context.aliases p.Ast.pname i
                    |> List.filter_map nth_formal
                  in
                  let fg =
                    Fsicp_ipa.Alias.globals_aliasing_formal
                      ctx.Context.aliases p.Ast.pname i
                  in
                  ff @ fg
              | None ->
                  if List.mem x prog.Ast.globals then
                    List.mapi (fun i f -> (i, f)) p.Ast.formals
                    |> List.filter_map (fun (i, f) ->
                           if
                             Fsicp_ipa.Alias.formal_global_may_alias
                               ctx.Context.aliases p.Ast.pname i x
                           then Some f
                           else None)
                  else []
            in
            let c =
              {
                modref = ctx.Context.modref;
                globals = prog.Ast.globals;
                formals = p.Ast.formals;
                proc = p.Ast.pname;
                alias_kills;
              }
            in
            let env0 =
              let e = ref Env.empty in
              List.iteri
                (fun i f ->
                  let v =
                    if i < Array.length entry.Solution.pe_formals then
                      entry.Solution.pe_formals.(i)
                    else Lattice.Bot
                  in
                  e := Env.add f v !e)
                p.Ast.formals;
              List.iter
                (fun (g, v) ->
                  let name = Prog.Var.name g in
                  if not (List.mem name p.Ast.formals) then
                    e := Env.add name v !e)
                entry.Solution.pe_globals;
              !e
            in
            let body', _ = rewrite_block c (Some env0) p.Ast.body in
            { p with Ast.body = body' })
      prog.Ast.procs
  in
  { prog with Ast.procs }
