(** Sparse multivariate polynomials over a procedure's formal parameters —
    the value domain of the polynomial jump function.  Coefficient
    arithmetic follows the language (mixed int/real promotion); sizes are
    capped, and a jump function that explodes gives up ([None]). *)

open Fsicp_lang

type monomial = (int * int) list
(** sorted [(formal index, exponent)] pairs; [[]] is the constant monomial *)

type t = (monomial * Value.t) list
(** normalised: no zero coefficients, monomials distinct and sorted *)

val max_terms : int
val max_degree : int

val zero : t
val const : Value.t -> t
val formal : int -> t
val is_const : t -> Value.t option
val equal : t -> t -> bool

val add : t -> t -> t option
val sub : t -> t -> t option
val neg : t -> t
val mul : t -> t -> t option

(** Evaluate under an assignment; [None] when a needed formal is missing. *)
val eval : t -> (int -> Value.t option) -> Value.t option

val formals_used : t -> int list
val pp : t Fmt.t
val to_string : t -> string
