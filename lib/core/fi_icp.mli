(** Flow-insensitive interprocedural constant propagation (paper Figure 3):
    optimistic lattice over formals with the [fp_bind] pass-through relation
    and a lowering worklist for PCG cycles; block-data globals minus the
    program-wide MOD set.  No intraprocedural analysis is performed — this
    is the cheap sound method the flow-sensitive traversal substitutes on
    back edges. *)

val method_name : string

val solve : Context.t -> Solution.t
