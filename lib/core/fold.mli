(** AST-level constant folding and dead-code elimination driven by an
    interprocedural solution: uses of proven constants become literals,
    branches with constant conditions are resolved, never-entered loops are
    dropped.  By-reference call arguments are never literalised.  The
    result is behaviourally identical (property-tested). *)

open Fsicp_lang

val fold_program : Context.t -> Solution.t -> Ast.program
