(** Copy-constant interprocedural propagation: the flat SCC kernel run
    with packed {e copy words} ({!Fsicp_scc.Lattice.P.copy}) binding each
    unknown formal and REF-closure global to its own entry slot, inside a
    Gauss–Seidel fixpoint over the PCG.  Copies [x := y] thereby carry
    constants through call sites that the one-pass flow-sensitive method
    reaches too early; [fs ⊑ cc] in the oracle's precision order.  See
    the implementation header for the full story. *)

val method_name : string

(** The copy-constant solution.  [jobs] is accepted for symmetry with the
    other methods and ignored — the pass schedule is sequential, so the
    result is trivially identical for every value. *)
val solve : ?jobs:int -> Context.t -> Solution.t
