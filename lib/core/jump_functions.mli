(** Jump-function interprocedural constant propagation — the baselines the
    paper compares against (Callahan–Cooper–Kennedy–Torczon '86;
    Grove–Torczon '93): a per-call-site summary of each argument as a
    function of the caller's formals, plus an optimistic propagation pass
    over the call graph.  Globals and return values are not propagated,
    matching the framework the paper measured against. *)

open Fsicp_lang
open Fsicp_prog

type variant =
  | Literal  (** literal actuals only *)
  | Intra  (** plus intraprocedurally-proven constant actuals *)
  | Pass_through  (** plus unmodified forwarded formals *)
  | Polynomial  (** plus polynomial functions of the caller's formals *)

val variant_name : variant -> string
val all_variants : variant list

type jf =
  | Jconst of Value.t
  | Jformal of int
  | Jpoly of Poly.t
  | Jbot

val pp_jf : jf Fmt.t

type site_jfs = {
  sj_caller : Prog.Proc.id;
  sj_cs_index : int;
  sj_callee : Prog.Proc.id;
  sj_live : bool;  (** false when the intra analysis proved the site dead *)
  sj_jfs : jf array;
}

(** Jump functions for every call site, plus the number of flow-sensitive
    intraprocedural analyses used to build them. *)
val build_jump_functions : Context.t -> variant -> site_jfs list * int

(** Evaluate a jump function under the caller's current formal values,
    given and answered as packed lattice words ({!Fsicp_scc.Lattice.P}). *)
val eval_jf : Context.t -> jf -> int array -> int

(** Build and propagate to a fixpoint (cycles converge by monotone
    iteration, unlike the historical implementations). *)
val solve : Context.t -> variant -> Solution.t
