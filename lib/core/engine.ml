(** Long-lived analysis session with incremental re-analysis — the core of
    [fsicp serve].

    The engine holds a {!Context.t} plus the current flow-insensitive and
    flow-sensitive solutions.  An {!edit_proc} replaces one procedure body
    and re-establishes both solutions, by one of two routes:

    - {b incremental} — when the edit preserves the program's {e shape}
      (same procedures, same callee sequence per procedure, same IPA
      summary shape for the edited procedure): only the edited procedure's
      artifacts are invalidated ({!Context.invalidate_proc}), the
      flow-insensitive solution is re-run in full (it is a tiny fraction
      of the flow-sensitive cost), and the flow-sensitive wavefront is
      re-driven over the downstream cone of the edit plus every callee of
      a back edge whose flow-insensitive record changed
      ({!Fs_icp.resolve}).  Everything outside the cone is reused, and
      cone members whose entry vectors are unchanged hit the SCC
      entry-vector memo.

    - {b full rebuild} — when the shape changes (procedure added, call
      site added/removed/retargeted, formals or immediate MOD/REF
      changed): a fresh context is built and both solutions are solved
      from scratch, exactly as a cold start.

    Either way the resulting {!solution} is identical to a from-scratch
    solve of the edited program at any [jobs] — the differential oracle
    ({!Fsicp_oracle.Oracle}) checks this byte-for-byte over random edit
    sequences. *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_ipa
open Fsicp_callgraph
open Fsicp_scc

module Trace = Fsicp_trace.Trace

type t = {
  floats : bool;
  mutable ctx : Context.t;
  mutable fi : Solution.t;
  mutable fs : Solution.t;
  mutable edits : int;
  mutable incremental_edits : int;
  mutable rebuilds : int;
}

type outcome =
  | Incremental of { dirty : int; total : int }
      (** [dirty] procedures re-driven out of [total] reachable *)
  | Rebuilt of string  (** full rebuild, with the reason *)

let solve_fresh ?jobs ~floats prog =
  let ctx = Context.create ~floats ?jobs prog in
  let fi = Fi_icp.solve ctx in
  let fs = Fs_icp.solve ?jobs ~fi ctx in
  (ctx, fi, fs)

let create ?(floats = true) ?jobs (prog : Ast.program) : t =
  Sema.check_exn prog;
  let ctx, fi, fs = solve_fresh ?jobs ~floats prog in
  { floats; ctx; fi; fs; edits = 0; incremental_edits = 0; rebuilds = 0 }

let context t = t.ctx
let solution t = t.fs
let fi_solution t = t.fi

let stats t : (string * int) list =
  [
    ("procs", Callgraph.n_procs t.ctx.Context.pcg);
    ("edits", t.edits);
    ("incremental_edits", t.incremental_edits);
    ("rebuilds", t.rebuilds);
    ("edit_epoch", Context.current_epoch t.ctx);
  ]

(* Argument shapes must match constructor-for-constructor, but two
   literals may carry different payloads: literal argument values feed
   only the flow-insensitive solve (re-run in full on every edit) and the
   flow-sensitive records of the dirty cone — never the alias or MOD/REF
   phases, which see only which positions are by-reference. *)
let args_shape_equal (a : Summary.arg_summary array)
    (b : Summary.arg_summary array) : bool =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      match (x, b.(i)) with
      | Summary.Alit _, Summary.Alit _ -> ()
      | x, y -> if x <> y then ok := false)
    a;
  !ok

(** Is the edited procedure's IPA summary shape-equal to its previous one?
    Shape equality is exactly the condition under which the PCG, the alias
    pairs and the MOD/REF closures of the {e whole program} are unchanged:
    those phases consume only formals, immediate MOD/REF sets and call
    shapes, never literal argument values. *)
let summary_shape_equal (a : Summary.proc_summary)
    (b : Summary.proc_summary) : bool =
  List.equal String.equal a.Summary.ps_formals b.Summary.ps_formals
  && Summary.VrefSet.equal a.Summary.ps_imod b.Summary.ps_imod
  && Summary.VrefSet.equal a.Summary.ps_iref b.Summary.ps_iref
  && List.equal
       (fun (x : Summary.call_summary) (y : Summary.call_summary) ->
         String.equal x.Summary.cs_callee y.Summary.cs_callee
         && x.Summary.cs_index = y.Summary.cs_index
         && args_shape_equal x.Summary.cs_args y.Summary.cs_args)
       a.Summary.ps_calls b.Summary.ps_calls

(* Value-level equality of two flow-insensitive call records.  Lattice
   values are compared with [Lattice.equal] (NaN-safe, unlike structural
   [=] on the floats inside [Value.Real]). *)
let record_equal (a : Solution.callsite_record option)
    (b : Solution.callsite_record option) : bool =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      Bool.equal a.Solution.cr_executable b.Solution.cr_executable
      && Array.length a.Solution.cr_args = Array.length b.Solution.cr_args
      && Array.for_all2 Lattice.equal a.Solution.cr_args b.Solution.cr_args
      && List.equal
           (fun (g1, v1) (g2, v2) ->
             Prog.Var.compare g1 g2 = 0 && Lattice.equal v1 v2)
           a.Solution.cr_globals b.Solution.cr_globals
  | Some _, None | None, Some _ -> false

let rebuild ?jobs t prog reason : outcome =
  let ctx, fi, fs = solve_fresh ?jobs ~floats:t.floats prog in
  t.ctx <- ctx;
  t.fi <- fi;
  t.fs <- fs;
  t.rebuilds <- t.rebuilds + 1;
  Rebuilt reason

(** Replace procedure [p.pname]'s definition with [p] (or add it when no
    procedure of that name exists) and re-establish both solutions.
    @raise Sema.Illformed when the edited program fails {!Sema.check};
    the engine state is untouched in that case. *)
let edit_proc ?jobs t (p : Ast.proc) : outcome =
  Trace.span ~args:(fun () -> [ ("proc", p.Ast.pname) ]) "engine:edit"
  @@ fun () ->
  let old_prog = t.ctx.Context.prog in
  match Ast.find_proc old_prog p.Ast.pname with
  | None ->
      (* A new procedure changes the program shape outright. *)
      let prog = { old_prog with Ast.procs = old_prog.Ast.procs @ [ p ] } in
      Sema.check_exn prog;
      t.edits <- t.edits + 1;
      rebuild ?jobs t prog "new procedure"
  | Some _ -> (
      let prog =
        {
          old_prog with
          Ast.procs =
            List.map
              (fun q ->
                if String.equal q.Ast.pname p.Ast.pname then p else q)
              old_prog.Ast.procs;
        }
      in
      Sema.check_exn prog;
      t.edits <- t.edits + 1;
      match Callgraph.proc_id t.ctx.Context.pcg p.Ast.pname with
      | None ->
          (* Unreachable procedure: no analysis artifact depends on its
             body.  Record the new text and summary; both solutions
             stand. *)
          Context.set_program t.ctx prog;
          let table = Hashtbl.copy t.ctx.Context.summaries.Summary.table in
          Hashtbl.replace table p.Ast.pname (Summary.summarize_proc prog p);
          Context.set_summaries t.ctx { Summary.prog; table };
          t.incremental_edits <- t.incremental_edits + 1;
          Incremental
            { dirty = 0; total = Callgraph.n_procs t.ctx.Context.pcg }
      | Some pid ->
          (* Only the edited procedure's summary can change — summaries
             are per-body and the globals list is untouched by a
             procedure edit — so summarize just that procedure instead of
             re-collecting the whole program (which would dwarf the
             incremental re-solve itself on large programs). *)
          let old_s = Summary.find t.ctx.Context.summaries p.Ast.pname in
          let new_s = Summary.summarize_proc prog p in
          if not (summary_shape_equal old_s new_s) then
            rebuild ?jobs t prog "summary shape changed"
          else begin
            let summaries =
              let table =
                Hashtbl.copy t.ctx.Context.summaries.Summary.table
              in
              Hashtbl.replace table p.Ast.pname new_s;
              { Summary.prog; table }
            in
            let ctx = t.ctx in
            let pcg = ctx.Context.pcg in
            (* Shape preserved: swap program and summaries in place,
               invalidate only the edited procedure's artifacts. *)
            Context.set_program ctx prog;
            Context.set_summaries ctx summaries;
            Context.invalidate_proc ctx pid;
            (* The flow-insensitive solve is a fixed, tiny cost (no SSA,
               no SCC); re-running it in full keeps the back-edge seed
               exact and gives us the record diff below for free. *)
            let fi' = Fi_icp.solve ctx in
            (* Seeds: the edited procedure, plus the callee of every back
               edge whose flow-insensitive record changed — the only
               channel through which an edit reaches a procedure that is
               not downstream of it over forward edges. *)
            let seeds = ref [ pid ] in
            List.iter
              (fun (e : Callgraph.edge) ->
                if e.Callgraph.back then begin
                  let at s =
                    Solution.find_call_record s ~caller:e.Callgraph.caller
                      ~cs_index:e.Callgraph.cs_index
                  in
                  if not (record_equal (at t.fi) (at fi')) then
                    seeds := e.Callgraph.callee :: !seeds
                end)
              pcg.Callgraph.edges;
            let dirty = Callgraph.cone pcg ~seeds:!seeds in
            let fs' = Fs_icp.resolve ?jobs ~fi:fi' ~prev:t.fs ~dirty ctx in
            t.fi <- fi';
            t.fs <- fs';
            t.incremental_edits <- t.incremental_edits + 1;
            Incremental
              { dirty = Array.length dirty; total = Callgraph.n_procs pcg }
          end)
