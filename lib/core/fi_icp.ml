(** Flow-insensitive interprocedural constant propagation (paper Figure 3).

    {b Globals}: the initial constants are collected from block data; any
    global modified anywhere in the program (it appears in the MOD set of
    the main procedure, which transitively covers every reachable call) is
    removed.  The survivors are constant for the entire program and are
    propagated to every procedure that references them.

    {b Formals}: an optimistic data-flow over the PCG.  All formals start at
    ⊤.  One forward topological traversal inspects every call site: an
    immediate (literal) constant or program-constant global argument meets
    the corresponding formal with that constant; an argument that is a
    formal of the caller which is {e currently marked constant and not
    modified (directly or indirectly) by the caller} passes its constant
    through, and the pair is recorded in the [fp_bind] relation; anything
    else meets with ⊥.  A worklist then handles PCG cycles: when a formal
    that had been constant is lowered to ⊥, everything bound to it through
    [fp_bind] is lowered too, transitively.

    Unlike the pass-through jump function of Callahan–Cooper–Kennedy–Torczon
    and Grove–Torczon, no flow-sensitive intraprocedural analysis is applied
    before propagation — the method sees only argument {e shapes} — so it
    finds fewer candidates (paper §5 calls its results "clearly inferior to
    the no-return polynomial jump function results"); its role is to be the
    cheap sound fallback the flow-sensitive method uses on back edges. *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_ipa
open Fsicp_callgraph
open Fsicp_scc

let method_name = "flow-insensitive"

module Trace = Fsicp_trace.Trace
module P = Lattice.P

(* Both counters are deterministic: the forward traversal order and the
   FIFO drain depend only on the program. *)
let c_pops = Trace.counter "fi.worklist_pops"
let c_lowerings = Trace.counter "fi.lowerings"

let solve_body (ctx : Context.t) : Solution.t =
  let pcg = ctx.Context.pcg in
  let db = pcg.Callgraph.db in
  let n = Callgraph.n_procs pcg in
  (* Dense caller-major formal numbering: formal [i] of procedure [p] is
     slot [fp_base.(p) + i].  All per-formal state is flat arrays — the
     former [(string * int)]-keyed hashtables hashed a boxed tuple per
     lattice meet. *)
  let n_formals =
    Array.init n (fun i ->
        let name = Prog.proc_name db pcg.Callgraph.nodes.(i) in
        List.length
          (Summary.find ctx.Context.summaries name).Summary.ps_formals)
  in
  let fp_base = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    fp_base.(i + 1) <- fp_base.(i) + n_formals.(i)
  done;
  let slot (p : Prog.Proc.id) i = fp_base.((p :> int)) + i in

  (* -- Globals -------------------------------------------------------- *)
  let modified =
    Modref.globals_modified_anywhere ctx.Context.modref
      ~main:ctx.Context.prog.Ast.main
  in
  let program_constants =
    Context.blockdata_env ctx
    |> List.filter (fun ((g : Prog.Var.id), v) ->
           Lattice.is_const v && not (List.mem (Prog.Var.name g) modified))
  in
  let global_const (g : Prog.Var.id) = List.assoc_opt g program_constants in

  (* -- Formals -------------------------------------------------------- *)
  let n_slots = fp_base.(n) in
  (* Packed lattice words ({!Lattice.P}): every meet below is integer
     arithmetic on an unboxed slot. *)
  let values = Array.make n_slots P.top in
  let fp_bind : int list array = Array.make n_slots [] in
  let value k = values.(k) in
  let worklist : int Queue.t = Queue.create () in
  let pops = ref 0 in
  let lowerings = ref 0 in
  (* [meet k w] implements the paper's meet procedure: lowering a formal
     that was not already ⊥ down to ⊥ schedules everything bound to it. *)
  let meet k w =
    let orig = value k in
    let merged = P.meet orig w in
    if merged <> orig then begin
      incr lowerings;
      values.(k) <- merged;
      if merged = P.bot && orig <> P.bot then
        List.iter (fun k' -> Queue.add k' worklist) fp_bind.(k)
    end
  in

  (* Forward topological traversal over all call sites. *)
  Array.iter
    (fun caller_id ->
      let caller = Prog.proc_name db caller_id in
      let s = Summary.find ctx.Context.summaries caller in
      List.iter
        (fun (c : Summary.call_summary) ->
          let callee_id = Callgraph.proc_id_exn pcg c.Summary.cs_callee in
          Array.iteri
            (fun j arg ->
              let target = slot callee_id j in
              match arg with
              | Summary.Alit v ->
                  meet target (Context.censor_w ctx (P.of_value v))
              | Summary.Aglobal g -> (
                  match global_const (Prog.Var.intern g) with
                  | Some v -> meet target (P.of_t v)
                  | None -> meet target P.bot)
              | Summary.Aformal i ->
                  let k = slot caller_id i in
                  let w = value k in
                  if
                    P.is_const w
                    && not (Modref.formal_modified ctx.Context.modref caller i)
                  then begin
                    fp_bind.(k) <- target :: fp_bind.(k);
                    meet target w
                  end
                  else meet target P.bot
              | Summary.Alocal _ | Summary.Aexpr -> meet target P.bot)
            c.Summary.cs_args)
        s.Summary.ps_calls)
    (Callgraph.forward_order pcg);

  (* Drain the lowering worklist (pass-through formals that were constant
     and have since been lowered). *)
  while not (Queue.is_empty worklist) do
    let k = Queue.take worklist in
    incr pops;
    if value k <> P.bot then begin
      incr lowerings;
      values.(k) <- P.bot;
      List.iter (fun k' -> Queue.add k' worklist) fp_bind.(k)
    end
  done;
  Trace.add c_pops !pops;
  Trace.add c_lowerings !lowerings;

  (* -- Assemble the solution ------------------------------------------ *)
  let entries =
    Prog.tbl_init db (fun pid ->
        let proc = Prog.proc_name db pid in
        let nf = n_formals.((pid :> int)) in
        let pe_formals =
          Array.init nf (fun i ->
              let w = value (slot pid i) in
              if w = P.top then
                (* A formal nothing was ever propagated to (its procedure
                   has no processed call sites) is not a constant. *)
                Lattice.Bot
              else P.to_t w)
        in
        (* Program-wide global constants hold at every entry; restrict to
           the globals the procedure may reference. *)
        let pe_globals =
          Modref.call_global_refs ctx.Context.modref ~callee:proc
          |> List.map (fun (gv : Fsicp_cfg.Ir.var) ->
                 ( gv.Fsicp_cfg.Ir.vid,
                   match global_const gv.Fsicp_cfg.Ir.vid with
                   | Some v -> v
                   | None -> Lattice.Bot ))
          |> List.sort (fun (a, _) (b, _) -> Prog.Var.compare a b)
        in
        { Solution.pe_formals; pe_globals })
  in

  (* Per-call-site records: the final constant status of every argument
     (recomputed after convergence, so pass-through statuses are not stale)
     and of every global in the callee's REF closure. *)
  let call_records =
    Array.to_list pcg.Callgraph.nodes
    |> List.concat_map (fun caller_id ->
           let caller = Prog.proc_name db caller_id in
           let s = Summary.find ctx.Context.summaries caller in
           List.map
             (fun (c : Summary.call_summary) ->
               let cr_args =
                 Array.map
                   (fun arg ->
                     match arg with
                     | Summary.Alit v ->
                         Context.censor ctx (Lattice.Const v)
                     | Summary.Aglobal g -> (
                         match global_const (Prog.Var.intern g) with
                         | Some v -> v
                         | None -> Lattice.Bot)
                     | Summary.Aformal i ->
                         let w = value (slot caller_id i) in
                         if
                           P.is_const w
                           && not
                                (Modref.formal_modified ctx.Context.modref
                                   caller i)
                         then P.to_t w
                         else Lattice.Bot
                     | Summary.Alocal _ | Summary.Aexpr -> Lattice.Bot)
                   c.Summary.cs_args
               in
               let cr_globals =
                 Modref.call_global_refs ctx.Context.modref
                   ~callee:c.Summary.cs_callee
                 |> List.map (fun (gv : Fsicp_cfg.Ir.var) ->
                        ( gv.Fsicp_cfg.Ir.vid,
                          match global_const gv.Fsicp_cfg.Ir.vid with
                          | Some v -> v
                          | None -> Lattice.Bot ))
               in
               {
                 Solution.cr_caller = caller_id;
                 cr_cs_index = c.Summary.cs_index;
                 cr_callee = Callgraph.proc_id_exn pcg c.Summary.cs_callee;
                 cr_executable = true;
                 cr_args;
                 cr_globals;
               })
             s.Summary.ps_calls)
  in
  Solution.make ~method_name ~db ~entries ~call_records ~scc_runs:0
    ~scc_results:(Prog.tbl db None)

let solve (ctx : Context.t) : Solution.t =
  Trace.next_epoch ();
  Trace.span "fi:solve" (fun () -> solve_body ctx)
