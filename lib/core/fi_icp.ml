(** Flow-insensitive interprocedural constant propagation (paper Figure 3).

    {b Globals}: the initial constants are collected from block data; any
    global modified anywhere in the program (it appears in the MOD set of
    the main procedure, which transitively covers every reachable call) is
    removed.  The survivors are constant for the entire program and are
    propagated to every procedure that references them.

    {b Formals}: an optimistic data-flow over the PCG.  All formals start at
    ⊤.  One forward topological traversal inspects every call site: an
    immediate (literal) constant or program-constant global argument meets
    the corresponding formal with that constant; an argument that is a
    formal of the caller which is {e currently marked constant and not
    modified (directly or indirectly) by the caller} passes its constant
    through, and the pair is recorded in the [fp_bind] relation; anything
    else meets with ⊥.  A worklist then handles PCG cycles: when a formal
    that had been constant is lowered to ⊥, everything bound to it through
    [fp_bind] is lowered too, transitively.

    Unlike the pass-through jump function of Callahan–Cooper–Kennedy–Torczon
    and Grove–Torczon, no flow-sensitive intraprocedural analysis is applied
    before propagation — the method sees only argument {e shapes} — so it
    finds fewer candidates (paper §5 calls its results "clearly inferior to
    the no-return polynomial jump function results"); its role is to be the
    cheap sound fallback the flow-sensitive method uses on back edges. *)

open Fsicp_lang
open Fsicp_ipa
open Fsicp_callgraph
open Fsicp_scc

type key = string * int (* procedure, formal index *)

let method_name = "flow-insensitive"

let solve (ctx : Context.t) : Solution.t =
  let pcg = ctx.Context.pcg in

  (* -- Globals -------------------------------------------------------- *)
  let modified =
    Modref.globals_modified_anywhere ctx.Context.modref
      ~main:ctx.Context.prog.Ast.main
  in
  let program_constants =
    Context.blockdata_env ctx
    |> List.filter (fun (g, v) ->
           Lattice.is_const v && not (List.mem g modified))
  in
  let global_const g = List.assoc_opt g program_constants in

  (* -- Formals -------------------------------------------------------- *)
  let values : (key, Lattice.t) Hashtbl.t = Hashtbl.create 64 in
  let fp_bind : (key, key list) Hashtbl.t = Hashtbl.create 64 in
  let value k = Option.value (Hashtbl.find_opt values k) ~default:Lattice.Top in
  let worklist : key Queue.t = Queue.create () in
  (* [meet k v] implements the paper's meet procedure: lowering a formal
     that was not already ⊥ down to ⊥ schedules everything bound to it. *)
  let meet k v =
    let orig = value k in
    let merged = Lattice.meet orig v in
    if not (Lattice.equal orig merged) then begin
      Hashtbl.replace values k merged;
      if merged = Lattice.Bot && orig <> Lattice.Bot then
        List.iter
          (fun k' -> Queue.add k' worklist)
          (Option.value (Hashtbl.find_opt fp_bind k) ~default:[])
    end
  in

  (* Forward topological traversal over all call sites. *)
  Array.iter
    (fun caller ->
      let s = Summary.find ctx.Context.summaries caller in
      List.iter
        (fun (c : Summary.call_summary) ->
          Array.iteri
            (fun j arg ->
              let target = (c.Summary.cs_callee, j) in
              match arg with
              | Summary.Alit v ->
                  meet target (Context.censor ctx (Lattice.Const v))
              | Summary.Aglobal g -> (
                  match global_const g with
                  | Some v -> meet target v
                  | None -> meet target Lattice.Bot)
              | Summary.Aformal i -> (
                  match value (caller, i) with
                  | Lattice.Const _ as v
                    when not
                           (Modref.formal_modified ctx.Context.modref caller i)
                    ->
                      Hashtbl.replace fp_bind (caller, i)
                        (target
                        :: Option.value
                             (Hashtbl.find_opt fp_bind (caller, i))
                             ~default:[]);
                      meet target v
                  | Lattice.Top | Lattice.Const _ | Lattice.Bot ->
                      meet target Lattice.Bot)
              | Summary.Alocal _ | Summary.Aexpr -> meet target Lattice.Bot)
            c.Summary.cs_args)
        s.Summary.ps_calls)
    (Callgraph.forward_order pcg);

  (* Drain the lowering worklist (pass-through formals that were constant
     and have since been lowered). *)
  while not (Queue.is_empty worklist) do
    let k = Queue.take worklist in
    if value k <> Lattice.Bot then begin
      Hashtbl.replace values k Lattice.Bot;
      List.iter
        (fun k' -> Queue.add k' worklist)
        (Option.value (Hashtbl.find_opt fp_bind k) ~default:[])
    end
  done;

  (* -- Assemble the solution ------------------------------------------ *)
  let entries = Hashtbl.create 16 in
  Array.iter
    (fun proc ->
      let s = Summary.find ctx.Context.summaries proc in
      let nf = List.length s.Summary.ps_formals in
      let pe_formals =
        Array.init nf (fun i ->
            match value (proc, i) with
            | Lattice.Top ->
                (* A formal nothing was ever propagated to (its procedure
                   has no processed call sites) is not a constant. *)
                Lattice.Bot
            | v -> v)
      in
      (* Program-wide global constants hold at every entry; restrict to the
         globals the procedure may reference. *)
      let pe_globals =
        Modref.gref_of ctx.Context.modref proc
        |> Summary.VrefSet.elements
        |> List.filter_map (fun vr ->
               match vr with
               | Summary.Vglobal g ->
                   Some
                     ( g,
                       match global_const g with
                       | Some v -> v
                       | None -> Lattice.Bot )
               | Summary.Vformal _ -> None)
      in
      Hashtbl.replace entries proc { Solution.pe_formals; pe_globals })
    pcg.Callgraph.nodes;

  (* Per-call-site records: the final constant status of every argument
     (recomputed after convergence, so pass-through statuses are not stale)
     and of every global in the callee's REF closure. *)
  let call_records =
    Array.to_list pcg.Callgraph.nodes
    |> List.concat_map (fun caller ->
           let s = Summary.find ctx.Context.summaries caller in
           List.map
             (fun (c : Summary.call_summary) ->
               let cr_args =
                 Array.map
                   (fun arg ->
                     match arg with
                     | Summary.Alit v ->
                         Context.censor ctx (Lattice.Const v)
                     | Summary.Aglobal g -> (
                         match global_const g with
                         | Some v -> v
                         | None -> Lattice.Bot)
                     | Summary.Aformal i -> (
                         match value (caller, i) with
                         | Lattice.Const _ as v
                           when not
                                  (Modref.formal_modified ctx.Context.modref
                                     caller i) ->
                             v
                         | Lattice.Top | Lattice.Const _ | Lattice.Bot ->
                             Lattice.Bot)
                     | Summary.Alocal _ | Summary.Aexpr -> Lattice.Bot)
                   c.Summary.cs_args
               in
               let cr_globals =
                 Modref.call_global_refs ctx.Context.modref
                   ~callee:c.Summary.cs_callee
                 |> List.map (fun (gv : Fsicp_cfg.Ir.var) ->
                        let g = gv.Fsicp_cfg.Ir.vname in
                        ( g,
                          match global_const g with
                          | Some v -> v
                          | None -> Lattice.Bot ))
               in
               {
                 Solution.cr_caller = caller;
                 cr_cs_index = c.Summary.cs_index;
                 cr_callee = c.Summary.cs_callee;
                 cr_executable = true;
                 cr_args;
                 cr_globals;
               })
             s.Summary.ps_calls)
  in
  Solution.make ~method_name ~entries ~call_records ~scc_runs:0
    ~scc_results:(Hashtbl.create 1)
