(** The full compilation-model pipeline (paper Figure 2), with per-phase
    wall-clock timings:

    {v
    1. Collect IPA inputs
    2. Construct the Program Call Graph
    3. Perform Interprocedural Aliasing
    4. Compute Interprocedural Mod and Ref
    5. Perform Interprocedural Constant Propagation  (FI, then FS)
    6. Perform Reverse Topological Traversal          (USE, transform)
    v}

    The timings back the paper's cost claim: "The flow-sensitive method
    increases the analysis phase of the compilation by 50% over the
    flow-insensitive method" — compare [fi_seconds] against
    [fs_seconds].

    Independent phases run concurrently when [jobs > 1]: steps 1 and 2
    need only the program, so the IPA collection and the PCG construction
    overlap; lowering fans out per procedure; and the flow-sensitive ICP
    runs its PCG wavefront on the same domain budget.  Each phase is still
    timed individually (inside its own task), so the Figure-2 trace keeps
    one entry per phase regardless of [jobs]. *)

open Fsicp_lang
open Fsicp_ipa
open Fsicp_callgraph
open Fsicp_par
module Trace = Fsicp_trace.Trace

type timing = {
  t_phase : string;
  t_seconds : float;
  t_minor_words : float;  (** words allocated on the executing domain *)
  t_major_words : float;
}

type t = {
  ctx : Context.t;
  fi : Solution.t;
  fs : Solution.t;
  cc : Solution.t option;  (** copy-constant; [Some] iff run [~extended] *)
  vc : Solution.t option;  (** value-context; [Some] iff run [~extended] *)
  use : Use.t;
  timings : timing list;
}

(* Wall-clock plus the executing domain's allocation counters: in OCaml 5
   [Gc.quick_stat] words are per-domain, so a phase running inside a
   [Par.both] task reports the allocation of that task's domain. *)
let time_it f =
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  ( r,
    (dt, s1.Gc.minor_words -. s0.Gc.minor_words,
     s1.Gc.major_words -. s0.Gc.major_words) )

(** Run the complete pipeline on [jobs] domains (default
    {!Fsicp_par.Par.default_jobs}).  The program must be
    {!Sema.check}-clean; the analysis results are identical for every
    [jobs]. *)
let run ?(floats = true) ?jobs ?(extended = false) (prog : Ast.program) : t =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  (* One Figure-2 span per phase, named exactly like the timing rows.  The
     epoch advances only here on the orchestrating domain, between phases —
     a sequential point even when the phase bodies themselves fan out. *)
  let phase name f () =
    time_it (fun () -> Trace.span name f)
  in
  Trace.next_epoch ();
  (* Steps 1–2 are independent given the program: collect the IPA inputs
     while the PCG is being built. *)
  let (pcg, t_pcg), (summaries, t_sum) =
    Par.both ~jobs
      (phase "2:call-graph" (fun () -> Callgraph.build prog))
      (phase "1:ipa-collect" (fun () -> Summary.collect prog))
  in
  Trace.next_epoch ();
  let aliases, t_alias =
    phase "3:aliasing" (fun () -> Alias.compute summaries pcg) ()
  in
  Trace.next_epoch ();
  let modref, t_modref =
    phase "4:mod-ref" (fun () -> Modref.compute summaries aliases pcg) ()
  in
  Trace.next_epoch ();
  let lowered, t_lower =
    phase "lowering" (fun () -> Context.lower_all ~jobs prog pcg) ()
  in
  let ctx =
    {
      Context.prog;
      pcg;
      summaries;
      aliases;
      modref;
      floats;
      lowered = Fsicp_prog.Prog.Proc.Tbl.map (fun p -> Some p) lowered;
      alias_kills =
        Fsicp_prog.Prog.Proc.Tbl.map
          (fun k -> Some k)
          (Context.compute_alias_kills aliases summaries pcg lowered);
      ssa_cache = Fsicp_prog.Prog.tbl pcg.Callgraph.db None;
      epochs = Fsicp_prog.Prog.tbl pcg.Callgraph.db 0;
      edit_epoch = 0;
      stream = None;
    }
  in
  (* Step 5: interprocedural constant propagation.  The FS timing includes
     SSA construction and the one-per-procedure SCC runs, mirroring the
     paper's "analysis phase" accounting; the FI method needs neither. *)
  Trace.next_epoch ();
  let fi, t_fi = phase "5a:fi-icp" (fun () -> Fi_icp.solve ctx) () in
  Trace.next_epoch ();
  let fs, t_fs = phase "5b:fs-icp" (fun () -> Fs_icp.solve ~jobs ~fi ctx) () in
  (* Beyond-the-paper methods, opt-in so the default run keeps the paper's
     exact Figure-2 phase trace. *)
  let cc, vc, t_ext =
    if not extended then (None, None, [])
    else begin
      Trace.next_epoch ();
      let cc, t_cc = phase "5c:cc-icp" (fun () -> Cc_icp.solve ctx) () in
      Trace.next_epoch ();
      let vc, t_vc = phase "5d:vc-icp" (fun () -> Vc_icp.solve ctx) () in
      (Some cc, Some vc, [ ("5c:cc-icp", t_cc); ("5d:vc-icp", t_vc) ])
    end
  in
  (* Step 6: reverse topological traversal — USE computation here; the
     transformation itself is on demand ({!Transform}, {!Fold}). *)
  Trace.next_epoch ();
  let use, t_use = phase "6:use" (fun () -> Use.compute lowered modref pcg) () in
  let timings =
    List.map
      (fun (t_phase, (t_seconds, t_minor_words, t_major_words)) ->
        { t_phase; t_seconds; t_minor_words; t_major_words })
      ([
         ("2:call-graph", t_pcg);
         ("1:ipa-collect", t_sum);
         ("3:aliasing", t_alias);
         ("4:mod-ref", t_modref);
         ("lowering", t_lower);
         ("5a:fi-icp", t_fi);
         ("5b:fs-icp", t_fs);
       ]
      @ t_ext
      @ [ ("6:use", t_use) ])
  in
  { ctx; fi; fs; cc; vc; use; timings }

let timing_of t phase =
  List.find_opt (fun x -> String.equal x.t_phase phase) t.timings
  |> Option.map (fun x -> x.t_seconds)

let fi_seconds t = Option.value (timing_of t "5a:fi-icp") ~default:0.0
let fs_seconds t = Option.value (timing_of t "5b:fs-icp") ~default:0.0

let pp ppf t =
  Fmt.pf ppf "pipeline for program with %d reachable procedure(s):@\n"
    (Array.length t.ctx.Context.pcg.Callgraph.nodes);
  List.iter
    (fun { t_phase; t_seconds; t_minor_words; t_major_words } ->
      Fmt.pf ppf "  %-14s %8.3f ms  %10.1f kw minor  %8.1f kw major@\n"
        t_phase (1000.0 *. t_seconds) (t_minor_words /. 1e3)
        (t_major_words /. 1e3))
    t.timings;
  Fmt.pf ppf "  FS ICP performed %d SCC run(s) for %d procedure(s)@\n"
    t.fs.Solution.scc_runs
    (Array.length t.ctx.Context.pcg.Callgraph.nodes);
  let extended name = function
    | None -> ()
    | Some (sol : Solution.t) ->
        Fmt.pf ppf "  %s performed %d SCC run(s)@\n" name sol.Solution.scc_runs
  in
  extended "CC ICP" t.cc;
  extended "VC ICP" t.vc
