(** The full compilation-model pipeline (paper Figure 2), with per-phase
    wall-clock timings:

    {v
    1. Collect IPA inputs
    2. Construct the Program Call Graph
    3. Perform Interprocedural Aliasing
    4. Compute Interprocedural Mod and Ref
    5. Perform Interprocedural Constant Propagation  (FI, then FS)
    6. Perform Reverse Topological Traversal          (USE, transform)
    v}

    The timings back the paper's cost claim: "The flow-sensitive method
    increases the analysis phase of the compilation by 50% over the
    flow-insensitive method" — compare [fi_seconds] against
    [fs_seconds]. *)

open Fsicp_lang
open Fsicp_cfg
open Fsicp_ipa
open Fsicp_callgraph

type timing = { t_phase : string; t_seconds : float }

type t = {
  ctx : Context.t;
  fi : Solution.t;
  fs : Solution.t;
  use : Use.t;
  timings : timing list;
}

let timed phase acc f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  acc := { t_phase = phase; t_seconds = dt } :: !acc;
  r

(** Run the complete pipeline.  The program must be {!Sema.check}-clean. *)
let run ?(floats = true) (prog : Ast.program) : t =
  let acc = ref [] in
  (* Steps 1–4 plus lowering: the IPA infrastructure. *)
  let pcg = timed "2:call-graph" acc (fun () -> Callgraph.build prog) in
  let summaries = timed "1:ipa-collect" acc (fun () -> Summary.collect prog) in
  let aliases = timed "3:aliasing" acc (fun () -> Alias.compute summaries pcg) in
  let modref =
    timed "4:mod-ref" acc (fun () -> Modref.compute summaries aliases pcg)
  in
  let lowered = Hashtbl.create 16 in
  timed "lowering" acc (fun () ->
      Array.iter
        (fun name ->
          Hashtbl.replace lowered name
            (Lower.lower_proc prog (Ast.find_proc_exn prog name)))
        pcg.Callgraph.nodes);
  let ctx =
    {
      Context.prog;
      pcg;
      summaries;
      aliases;
      modref;
      floats;
      lowered;
      ssa_cache = Hashtbl.create 16;
    }
  in
  (* Step 5: interprocedural constant propagation.  The FS timing includes
     SSA construction and the one-per-procedure SCC runs, mirroring the
     paper's "analysis phase" accounting; the FI method needs neither. *)
  let fi = timed "5a:fi-icp" acc (fun () -> Fi_icp.solve ctx) in
  let fs = timed "5b:fs-icp" acc (fun () -> Fs_icp.solve ~fi ctx) in
  (* Step 6: reverse topological traversal — USE computation here; the
     transformation itself is on demand ({!Transform}, {!Fold}). *)
  let use =
    timed "6:use" acc (fun () -> Use.compute lowered modref pcg)
  in
  { ctx; fi; fs; use; timings = List.rev !acc }

let timing_of t phase =
  List.find_opt (fun x -> String.equal x.t_phase phase) t.timings
  |> Option.map (fun x -> x.t_seconds)

let fi_seconds t = Option.value (timing_of t "5a:fi-icp") ~default:0.0
let fs_seconds t = Option.value (timing_of t "5b:fs-icp") ~default:0.0

let pp ppf t =
  Fmt.pf ppf "pipeline for program with %d reachable procedure(s):@\n"
    (Array.length t.ctx.Context.pcg.Callgraph.nodes);
  List.iter
    (fun { t_phase; t_seconds } ->
      Fmt.pf ppf "  %-14s %8.3f ms@\n" t_phase (1000.0 *. t_seconds))
    t.timings;
  Fmt.pf ppf "  FS ICP performed %d SCC run(s) for %d procedure(s)@\n"
    t.fs.Solution.scc_runs
    (Array.length t.ctx.Context.pcg.Callgraph.nodes)
