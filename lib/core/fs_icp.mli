(** Flow-sensitive interprocedural constant propagation (paper Figure 4) —
    the paper's contribution.  One forward topological traversal of the PCG
    interleaves the Wegman–Zadeck SCC analysis with interprocedural meets
    at call sites; back edges take the flow-insensitive solution; each
    procedure receives exactly one flow-sensitive analysis, recursion
    included.  On acyclic PCGs the result equals the iterative
    flow-sensitive fixpoint ({!Reference}). *)

val method_name : string

(** [solve ?fi ?call_def_value ctx]:
    [fi] overrides the flow-insensitive solution used for back edges
    (computed on demand only when the PCG has cycles, as in the paper);
    [call_def_value] refines post-call values of call-defined variables —
    the hook the return-constants extension uses. *)
val solve :
  ?fi:Solution.t ->
  ?call_def_value:
    (caller:string -> Fsicp_ssa.Ssa.call -> Fsicp_cfg.Ir.var -> Fsicp_scc.Lattice.t) ->
  Context.t ->
  Solution.t
