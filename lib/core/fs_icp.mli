(** Flow-sensitive interprocedural constant propagation (paper Figure 4) —
    the paper's contribution.  One forward topological traversal of the PCG
    interleaves the Wegman–Zadeck SCC analysis with interprocedural meets
    at call sites; back edges take the flow-insensitive solution; each
    procedure receives exactly one flow-sensitive analysis, recursion
    included.  On acyclic PCGs the result equals the iterative
    flow-sensitive fixpoint ({!Reference}).

    The traversal is executed as a dependency wavefront over the PCG's
    forward edges: procedures whose forward callers have all been analysed
    run concurrently on [jobs] domains, with entry meets pulled in
    canonical in-edge order at dispatch time, so the solution is identical
    for every [jobs]. *)

val method_name : string

(** [shard_regions pcg ~parts] partitions the dense procedure-id range
    [0, n) into at most [parts] contiguous regions, returned as an
    ascending boundary array [[|0; c1; ...; n|]] (region [r] is
    [[bounds.(r), bounds.(r+1))]).  No boundary ever falls strictly inside
    a back-edge id interval, so every SCC of the PCG condensation lies
    whole within one region; on heavily cyclic graphs fewer (larger)
    regions come back.  The from-scratch wavefront assigns each region's
    nodes to domain [r mod jobs] ({!Fsicp_par.Par.wavefront_sharded});
    exposed for the region-invariant tests. *)
val shard_regions : Fsicp_callgraph.Callgraph.t -> parts:int -> int array

(** [solve ?jobs ?fi ?call_def_value ctx]:
    [jobs] is the number of worker domains for the wavefront traversal
    (default {!Fsicp_par.Par.default_jobs}; [1] is the sequential
    reference path, and every value yields the same solution);
    [fi] overrides the flow-insensitive solution used for back edges
    (computed on demand only when the PCG has cycles, as in the paper);
    [call_def_value] refines post-call values of call-defined variables —
    the hook the return-constants extension uses; it answers in packed
    lattice words ({!Fsicp_scc.Lattice.P}). *)
val solve :
  ?jobs:int ->
  ?fi:Solution.t ->
  ?call_def_value:
    (caller:string -> Fsicp_ssa.Ssa.call -> Fsicp_cfg.Ir.var -> int) ->
  Context.t ->
  Solution.t

(** [resolve ?jobs ~fi ~prev ~dirty ctx] — incremental re-solve after a
    shape-preserving procedure edit ({!Engine} is the intended caller).

    [dirty] is the forward-edge cone ({!Fsicp_callgraph.Callgraph.cone}) of
    the edited procedures plus every callee of a back edge whose
    flow-insensitive record changed; [fi] is the fresh flow-insensitive
    solution; [prev] the previous flow-sensitive one.  Only the cone is
    re-driven through the wavefront (unchanged entry vectors inside it hit
    the SCC memo); procedures outside it reuse their previous entry, call
    records and SCC result verbatim.  The returned solution is identical to
    a from-scratch {!solve} of the edited program, at any [jobs]; the saved
    work is visible in the ["fs.resolve.dirty"] / ["fs.resolve.reused"] /
    ["scc.memo_hits"] trace counters. *)
val resolve :
  ?jobs:int ->
  fi:Solution.t ->
  prev:Solution.t ->
  dirty:Fsicp_prog.Prog.Proc.id array ->
  Context.t ->
  Solution.t
