(** Flow-sensitive interprocedural constant propagation (paper Figure 4).

    One forward topological traversal of the PCG, interleaving the
    Wegman–Zadeck SCC intraprocedural analysis with interprocedural
    propagation:

    + visit procedures in reverse postorder from [main], so every caller
      reachable over forward edges is processed before its callees;
    + on visiting [p], meet — over all already-processed, {e executable}
      call sites invoking [p] — the recorded lattice value of each argument
      and of each global in [p]'s REF closure; call sites reached over
      {b back edges} have not been processed yet, so their contribution is
      taken from the {b flow-insensitive} solution instead (computed
      beforehand, and only when the PCG actually has cycles);
    + run SCC on [p] {e once}, with the met values as the entry environment;
    + record at each executable call site of [p] the lattice value of every
      argument and every relevant global, for its callees' later meets.

    Thus each procedure receives exactly one flow-sensitive analysis —
    recursion included — which is the paper's efficiency claim; when the
    PCG is acyclic the result coincides with the full iterative
    flow-sensitive solution (checked against {!Reference} in the tests),
    and as the back-edge ratio grows the solution degrades gracefully
    toward the flow-insensitive one (the BACKEDGE experiment). *)

open Fsicp_lang
open Fsicp_cfg
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_ipa
open Fsicp_scc

let method_name = "flow-sensitive"

type pending = {
  mutable p_formals : Lattice.t array;
  p_globals : (string, Lattice.t) Hashtbl.t;
      (** accumulating meet per global in the procedure's REF closure *)
}

(** [solve ?fi ?call_def_value ctx] computes the flow-sensitive solution.

    [fi] overrides the flow-insensitive solution used for back edges
    (computed on demand when the PCG has cycles, matching the paper:
    "performing a flow-insensitive analysis prior to the flow-sensitive
    analysis, only if there are cycles in the PCG").

    [call_def_value] refines the post-call value of call-defined variables;
    the return-constants extension ({!Return_consts}) passes the summaries
    of its reverse traversal here. *)
let solve ?fi
    ?(call_def_value :
       (caller:string -> Ssa.call -> Ir.var -> Lattice.t) option)
    (ctx : Context.t) : Solution.t =
  let pcg = ctx.Context.pcg in
  let fi =
    match fi with
    | Some s -> Some s
    | None -> if Callgraph.has_cycles pcg then Some (Fi_icp.solve ctx) else None
  in

  let gref_globals proc =
    Modref.gref_of ctx.Context.modref proc
    |> Summary.VrefSet.elements
    |> List.filter_map (function
         | Summary.Vglobal g -> Some g
         | Summary.Vformal _ -> None)
  in

  (* Pending entry meets, accumulated as callers are processed. *)
  let pending : (string, pending) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun proc ->
      let s = Summary.find ctx.Context.summaries proc in
      let nf = List.length s.Summary.ps_formals in
      let p_globals = Hashtbl.create 8 in
      List.iter (fun g -> Hashtbl.replace p_globals g Lattice.Top)
        (gref_globals proc);
      Hashtbl.replace pending proc
        { p_formals = Array.make nf Lattice.Top; p_globals })
    pcg.Callgraph.nodes;

  let meet_formal proc j v =
    let p = Hashtbl.find pending proc in
    if j < Array.length p.p_formals then
      p.p_formals.(j) <- Lattice.meet p.p_formals.(j) v
  in
  let meet_global proc g v =
    let p = Hashtbl.find pending proc in
    match Hashtbl.find_opt p.p_globals g with
    | Some cur -> Hashtbl.replace p.p_globals g (Lattice.meet cur v)
    | None -> () (* not in the REF closure: its entry value is never used *)
  in

  (* Back edges contribute the flow-insensitive per-call-site statuses,
     seeded before the traversal begins. *)
  (match fi with
  | None -> ()
  | Some fi ->
      List.iter
        (fun (e : Callgraph.edge) ->
          if Callgraph.is_back_edge pcg e then
            match
              Solution.find_call_record fi ~caller:e.Callgraph.caller
                ~cs_index:e.Callgraph.cs_index
            with
            | None -> ()
            | Some cr ->
                Array.iteri
                  (fun j v -> meet_formal e.Callgraph.callee j v)
                  cr.Solution.cr_args;
                List.iter
                  (fun (g, v) -> meet_global e.Callgraph.callee g v)
                  cr.Solution.cr_globals)
        pcg.Callgraph.edges);

  (* Entry environment of [main]: block data constants; everything else
     unknown. *)
  let blockdata = Context.blockdata_env ctx in
  (let main = ctx.Context.prog.Ast.main in
   let p = Hashtbl.find pending main in
   Hashtbl.iter
     (fun g _ ->
       let v =
         match List.assoc_opt g blockdata with
         | Some v -> v
         | None -> Lattice.Bot
       in
       Hashtbl.replace p.p_globals g v)
     p.p_globals);

  let entries = Hashtbl.create 16 in
  let scc_results = Hashtbl.create 16 in
  let call_records = ref [] in
  let scc_runs = ref 0 in

  Array.iter
    (fun proc ->
      let pend = Hashtbl.find pending proc in
      (* Top after all contributions = no executable call reaches the
         procedure; treat as unknown rather than claiming dead-code
         constants. *)
      let finalize v = match v with Lattice.Top -> Lattice.Bot | v -> v in
      let pe_formals = Array.map finalize pend.p_formals in
      let pe_globals =
        Hashtbl.fold (fun g v acc -> (g, finalize v) :: acc) pend.p_globals []
        |> List.sort compare
      in
      Hashtbl.replace entries proc { Solution.pe_formals; pe_globals };
      (* One flow-sensitive intraprocedural analysis of [proc]. *)
      let entry_env (v : Ir.var) =
        match v.Ir.vkind with
        | Ir.Formal i ->
            if i < Array.length pe_formals then pe_formals.(i)
            else Lattice.Bot
        | Ir.Global -> (
            match List.assoc_opt v.Ir.vname pe_globals with
            | Some value -> value
            | None ->
                (* Not in the REF closure but still versioned (e.g. only in
                   the MOD closure of some callee): unknown at entry unless
                   this is [main] and block data initialises it. *)
                if String.equal proc ctx.Context.prog.Ast.main then
                  match List.assoc_opt v.Ir.vname blockdata with
                  | Some value -> value
                  | None -> Lattice.Bot
                else Lattice.Bot)
        | Ir.Local | Ir.Temp -> Lattice.Bot
      in
      let ssa = Context.ssa ctx proc in
      let cdv =
        match call_def_value with
        | None -> Scc.default_config.Scc.call_def_value
        | Some f ->
            (* The SCC core keys call effects by callee name; when several
               calls to the same callee define the same variable, meet
               their summaries (conservative and rare). *)
            let calls = Ssa.call_sites ssa in
            fun ~callee v ->
              List.fold_left
                (fun acc (_, _, (c : Ssa.call)) ->
                  if String.equal c.Ssa.c_callee callee then
                    Lattice.meet acc (f ~caller:proc c v)
                  else acc)
                Lattice.Top calls
              |> fun r -> if r = Lattice.Top then Lattice.Bot else r
      in
      let config = { Scc.entry_env; call_def_value = cdv } in
      let res = Scc.run ~config ssa in
      incr scc_runs;
      Hashtbl.replace scc_results proc res;
      (* Record call-site values and contribute to callees. *)
      let out_edges = Callgraph.out_edges pcg proc in
      List.iter
        (fun (b, _, (c : Ssa.call)) ->
          let executable = res.Scc.block_executable.(b) in
          let cr_args =
            Array.mapi
              (fun j _ ->
                if executable then Context.censor ctx (Scc.arg_value res c j)
                else Lattice.Top)
              c.Ssa.c_args
          in
          let cr_globals =
            Array.to_list c.Ssa.c_global_uses
            |> List.map (fun ((g : Ir.var), n) ->
                   ( g.Ir.vname,
                     if executable then
                       Context.censor ctx res.Scc.values.(n.Ssa.id)
                     else Lattice.Top ))
          in
          call_records :=
            {
              Solution.cr_caller = proc;
              cr_cs_index = c.Ssa.c_cs_id;
              cr_callee = c.Ssa.c_callee;
              cr_executable = executable;
              cr_args;
              cr_globals;
            }
            :: !call_records;
          (* Contribute to the callee's pending meet — unless this edge is
             a back edge, whose contribution was the FI seed. *)
          let edge =
            List.find_opt
              (fun (e : Callgraph.edge) ->
                e.Callgraph.cs_index = c.Ssa.c_cs_id)
              out_edges
          in
          match edge with
          | Some e when Callgraph.is_back_edge pcg e -> ()
          | Some _ | None ->
              if executable then begin
                Array.iteri
                  (fun j v -> meet_formal c.Ssa.c_callee j v)
                  cr_args;
                List.iter
                  (fun (g, v) -> meet_global c.Ssa.c_callee g v)
                  cr_globals
              end)
        (Ssa.call_sites ssa))
    (Callgraph.forward_order pcg);

  {
    Solution.method_name;
    entries;
    call_records = List.rev !call_records;
    scc_runs = !scc_runs;
    scc_results;
  }
