(** Flow-sensitive interprocedural constant propagation (paper Figure 4).

    One forward topological traversal of the PCG, interleaving the
    Wegman–Zadeck SCC intraprocedural analysis with interprocedural
    propagation:

    + visit procedures in reverse postorder from [main], so every caller
      reachable over forward edges is processed before its callees;
    + on visiting [p], meet — over all already-processed, {e executable}
      call sites invoking [p] — the recorded lattice value of each argument
      and of each global in [p]'s REF closure; call sites reached over
      {b back edges} have not been processed yet, so their contribution is
      taken from the {b flow-insensitive} solution instead (computed
      beforehand, and only when the PCG actually has cycles);
    + run SCC on [p] {e once}, with the met values as the entry environment;
    + record at each executable call site of [p] the lattice value of every
      argument and every relevant global, for its callees' later meets.

    Thus each procedure receives exactly one flow-sensitive analysis —
    recursion included — which is the paper's efficiency claim; when the
    PCG is acyclic the result coincides with the full iterative
    flow-sensitive solution (checked against {!Reference} in the tests),
    and as the back-edge ratio grows the solution degrades gracefully
    toward the flow-insensitive one (the BACKEDGE experiment).

    {2 Parallel execution}

    The traversal is a dependency {e wavefront}: a procedure is ready as
    soon as all of its forward-edge callers have been analysed,
    independently of its siblings, so ready procedures run concurrently on
    [jobs] domains ({!Fsicp_par.Par.wavefront}).  Procedure [p]'s entry
    meet is {e pulled} at dispatch time from the call records its forward
    callers already produced — in canonical in-edge order, so the result is
    independent of completion order — rather than pushed by the callers,
    which keeps the per-call-site hot path free of locks: the scheduler's
    ready-count bookkeeping is the only synchronisation point.  Back-edge
    contributions come from the flow-insensitive seed, which is complete
    before the wavefront starts, so no cross-domain race exists.
    [jobs = 1] processes the nodes sequentially in exactly the forward
    order the original implementation used; any [jobs] yields a
    bit-identical {!Solution.t} (verified by the test suite). *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_cfg
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_ipa
open Fsicp_scc
open Fsicp_par

let method_name = "flow-sensitive"

module Trace = Fsicp_trace.Trace
module P = Lattice.P

(* Incremental re-solve volume: procedures re-driven through the wavefront
   vs procedures whose previous outputs were reused verbatim.  Both are
   deterministic for a given edit sequence. *)
let c_resolve_dirty = Trace.counter "fs.resolve.dirty"
let c_resolve_reused = Trace.counter "fs.resolve.reused"

(* -- Shard regions ------------------------------------------------------ *)

(* A cut at position [i] splits the dense id range into [0, i) / [i, n).
   In reverse postorder every non-back edge increases ids, so any path
   from a higher id back to a lower one must traverse a back edge (c, k)
   with [k <= c]; an SCC spanning the cut would need such a path crossing
   it, i.e. a back edge with [k < i <= c].  Forbidding cuts inside every
   back-edge interval [k+1, c] therefore keeps each SCC of the PCG
   condensation whole within one region. *)
let shard_regions (pcg : Callgraph.t) ~parts : int array =
  let n = Callgraph.n_procs pcg in
  let parts = max 1 (min parts (max 1 n)) in
  if n = 0 then [| 0; 0 |]
  else begin
    (* Difference-array coverage of the forbidden intervals. *)
    let diff = Array.make (n + 2) 0 in
    List.iter
      (fun (e : Callgraph.edge) ->
        if e.Callgraph.back then begin
          let k = (e.Callgraph.callee :> int)
          and c = (e.Callgraph.caller :> int) in
          (* Self-recursion (k = c) forbids nothing: the interval is empty. *)
          if k < c then begin
            diff.(k + 1) <- diff.(k + 1) + 1;
            diff.(c + 1) <- diff.(c + 1) - 1
          end
        end)
      pcg.Callgraph.edges;
    let legal = ref [] and cov = ref 0 in
    for i = 1 to n - 1 do
      cov := !cov + diff.(i);
      if !cov = 0 then legal := i :: !legal
    done;
    let legal = Array.of_list (List.rev !legal) in
    (* For each ideal boundary, take the largest legal cut not past it;
       strictly increasing cuts, so heavily cyclic graphs just yield fewer
       (larger) regions. *)
    let cuts = ref [] and last = ref 0 and li = ref 0 in
    for p = 1 to parts - 1 do
      let target = p * n / parts in
      while !li < Array.length legal && legal.(!li) <= target do
        incr li
      done;
      if !li > 0 && legal.(!li - 1) > !last then begin
        cuts := legal.(!li - 1) :: !cuts;
        last := legal.(!li - 1)
      end
    done;
    Array.of_list ((0 :: List.rev (n :: !cuts)) |> List.sort_uniq compare)
  end

(* Region [r] (ids [bounds.(r), bounds.(r+1))) belongs to domain
   [r mod jobs]: more regions than domains interleaves whole regions
   round-robin, which balances corpora whose hard work clusters in one
   id range without ever splitting a region. *)
let owners_of_regions (bounds : int array) ~jobs ~n : int array =
  let owners = Array.make n 0 in
  for r = 0 to Array.length bounds - 2 do
    for i = bounds.(r) to bounds.(r + 1) - 1 do
      owners.(i) <- r mod jobs
    done
  done;
  owners

(** [solve ?jobs ?fi ?call_def_value ctx] computes the flow-sensitive
    solution.

    [jobs] is the number of worker domains for the wavefront traversal and
    the SSA pre-build (default {!Fsicp_par.Par.default_jobs}); the solution
    is identical for every value.

    [fi] overrides the flow-insensitive solution used for back edges
    (computed on demand when the PCG has cycles, matching the paper:
    "performing a flow-insensitive analysis prior to the flow-sensitive
    analysis, only if there are cycles in the PCG").

    [call_def_value] refines the post-call value of call-defined variables;
    the return-constants extension ({!Return_consts}) passes the summaries
    of its reverse traversal here.

    [prev]/[dirty] select the incremental path (see {!resolve}): only the
    procedures in [dirty] — a forward-edge-closed cone in ascending id
    order — are re-driven through the wavefront; every other procedure's
    entry, call records and SCC result are copied from [prev] verbatim. *)
let solve_body ?jobs ?fi ?prev ?(dirty : Prog.Proc.id array option)
    ?(call_def_value :
       (caller:string -> Ssa.call -> Ir.var -> int) option)
    (ctx : Context.t) : Solution.t =
  let pcg = ctx.Context.pcg in
  let nodes = pcg.Callgraph.nodes in
  let n = Array.length nodes in
  let jobs =
    max 1 (min (match jobs with Some j -> j | None -> Par.default_jobs ()) n)
  in
  let fi =
    match fi with
    | Some s -> Some s
    | None -> if Callgraph.has_cycles pcg then Some (Fi_icp.solve ctx) else None
  in

  (* The globals of [proc]'s REF closure, as interned ids.  GREF of a
     procedure is exactly what [call_global_refs] reports for a call to it,
     and Modref precomputes that list per procedure. *)
  let gref_globals proc =
    Modref.call_global_refs ctx.Context.modref ~callee:proc
  in

  (* Wavefront shape: procedure [i] depends on the distinct procedures that
     call it over forward (non-back) edges; back edges contribute the FI
     seed instead and impose no ordering.  The forward-edge graph is acyclic
     and consistent with reverse postorder by construction.  A procedure's
     id is its reverse-postorder index, so ids double as wavefront slots. *)
  let in_edges = Array.map (fun pid -> Callgraph.in_edges pcg pid) nodes in
  let deps = Array.make n [] in
  let dependents = Array.make n [] in
  Array.iteri
    (fun i es ->
      let callers =
        Array.to_list es
        |> List.filter_map (fun (e : Callgraph.edge) ->
               if e.Callgraph.back then None
               else Some (e.Callgraph.caller :> int))
        |> List.sort_uniq compare
      in
      deps.(i) <- callers;
      List.iter (fun c -> dependents.(c) <- i :: dependents.(c)) callers)
    in_edges;
  Array.iteri (fun i l -> dependents.(i) <- List.rev l) dependents;

  (* Pre-build SSA for every procedure (embarrassingly parallel, and the
     bulk of the flow-sensitive setup time); afterwards [Context.ssa] is a
     read-only cache hit from any domain.  Streaming contexts skip this on
     purpose: each procedure's SSA is built inside [process] when its
     wavefront turn comes and released right after, so the peak resident
     set follows the frontier instead of the program. *)
  let streaming = Context.is_streaming ctx in
  if jobs > 1 && not streaming then Context.build_ssa ~jobs ctx;

  (* Block-data seeds, pre-encoded to packed words and keyed by raw int id:
     the entry-environment lookups below never box. *)
  let blockdata = Context.blockdata_env ctx in
  let blockdata_tbl : (int, int) Hashtbl.t =
    Hashtbl.create (List.length blockdata)
  in
  List.iter
    (fun (g, v) ->
      Hashtbl.replace blockdata_tbl (Prog.Var.to_int g) (P.of_t v))
    blockdata;
  let main = ctx.Context.prog.Ast.main in

  (* Per-procedure outputs, written only by the domain that processes the
     procedure and read by its dependents after the scheduler's
     happens-before edge. *)
  let entries_arr = Array.make n Solution.empty_entry in
  let results_arr : Scc.result option array = Array.make n None in
  let records_arr : Solution.callsite_record list array = Array.make n [] in
  (* Call records by (caller id, cs_index): dense rows, one slot per call
     site, since a caller records each of its sites at most once. *)
  let record_idx : Solution.callsite_record option array array =
    Array.init n (fun i -> Array.make (Callgraph.n_call_sites pcg nodes.(i)) None)
  in

  (* Incremental path: flag the dirty cone and seed every clean
     procedure's outputs from the previous solution.  A clean procedure's
     forward callers are all clean (the cone is forward-closed) and its
     back-edge contributions are unchanged (procedures downstream of a
     changed flow-insensitive record are seeded into the cone), so its
     previous entry, records and SCC result are exactly what a from-scratch
     solve would recompute. *)
  let dirty_mask =
    match dirty with
    | None -> None
    | Some d ->
        let m = Array.make n false in
        Array.iter (fun (pid : Prog.Proc.id) -> m.((pid :> int)) <- true) d;
        Some m
  in
  (match (prev, dirty_mask) with
  | Some (prev : Solution.t), Some m ->
      (* Bucket the previous records by caller, preserving the per-caller
         (call-site) order the from-scratch assembly produced. *)
      let acc = Array.make n [] in
      List.iter
        (fun (cr : Solution.callsite_record) ->
          let c = (cr.Solution.cr_caller :> int) in
          acc.(c) <- cr :: acc.(c))
        prev.Solution.call_records;
      for i = 0 to n - 1 do
        if not m.(i) then begin
          let pid = nodes.(i) in
          entries_arr.(i) <- Solution.entry_at prev pid;
          results_arr.(i) <- Prog.Proc.Tbl.get prev.Solution.scc_results pid;
          let recs = List.rev acc.(i) in
          records_arr.(i) <- recs;
          List.iter
            (fun (cr : Solution.callsite_record) ->
              record_idx.(i).(cr.Solution.cr_cs_index) <- Some cr)
            recs
        end
      done
  | _ -> ());

  let process i =
    let pid = nodes.(i) in
    let proc = Callgraph.proc_name pcg pid in
    (* Detached: the wavefront assigns the procedure to whichever domain is
       free, so the span must not inherit that domain's stack in the
       canonical trace.  The procedure name keys the canonical order. *)
    Trace.span ~detach:true
      ~args:(fun () -> [ ("proc", proc) ])
      "fs:proc"
    @@ fun () ->
    let s = Summary.find ctx.Context.summaries proc in
    let nf = List.length s.Summary.ps_formals in
    let formals = Array.make nf P.top in
    (* The REF-closure globals as a sorted id array with a parallel packed
       value array: the entry meets and the SCC entry environment binary-
       search it instead of hashing, and a meet is one int store. *)
    let gids =
      Array.of_list (List.map (fun (g : Ir.var) -> g.Ir.vid) (gref_globals proc))
    in
    Array.sort Prog.Var.compare gids;
    let gvals = Array.make (Array.length gids) P.top in
    let gfind (g : int) =
      let lo = ref 0 and hi = ref (Array.length gids - 1) in
      let found = ref (-1) in
      while !lo <= !hi do
        let mid = (!lo + !hi) lsr 1 in
        let gm = Prog.Var.to_int gids.(mid) in
        if gm = g then begin
          found := mid;
          lo := !hi + 1
        end
        else if gm < g then lo := mid + 1
        else hi := mid - 1
      done;
      !found
    in
    let meet_formal j w = if j < nf then formals.(j) <- P.meet formals.(j) w in
    let meet_global (g : int) w =
      let k = gfind g in
      (* missing: not in the REF closure — its entry value is never used *)
      if k >= 0 then gvals.(k) <- P.meet gvals.(k) w
    in
    let contribute (cr : Solution.callsite_record) =
      Array.iteri (fun j v -> meet_formal j (P.of_t v)) cr.Solution.cr_args;
      List.iter
        (fun (g, v) -> meet_global (Prog.Var.to_int g) (P.of_t v))
        cr.Solution.cr_globals
    in
    (* Back edges contribute the flow-insensitive per-call-site statuses. *)
    (match fi with
    | None -> ()
    | Some fi ->
        Array.iter
          (fun (e : Callgraph.edge) ->
            if e.Callgraph.back then
              match
                Solution.find_call_record fi ~caller:e.Callgraph.caller
                  ~cs_index:e.Callgraph.cs_index
              with
              | None -> ()
              | Some cr -> contribute cr)
          in_edges.(i));
    (* Entry environment of [main]: block data constants; everything else
       unknown.  (Any call edge into [main] is necessarily a back edge, so
       this replacement is main's whole global story bar the FI seed, which
       it deliberately overrides — as the sequential traversal always did.) *)
    if String.equal proc main then
      for k = 0 to Array.length gids - 1 do
        gvals.(k) <-
          (match
             Hashtbl.find_opt blockdata_tbl (Prog.Var.to_int gids.(k))
           with
          | Some w -> w
          | None -> P.bot)
      done;
    (* Forward edges: every forward caller has been processed (the
       scheduler guarantees it), so pull its recorded executable call-site
       values, in canonical in-edge order. *)
    Array.iter
      (fun (e : Callgraph.edge) ->
        if not e.Callgraph.back then
          match
            record_idx.((e.Callgraph.caller :> int)).(e.Callgraph.cs_index)
          with
          | Some cr when cr.Solution.cr_executable -> contribute cr
          | Some _ | None -> ())
      in_edges.(i);
    (* Top after all contributions = no executable call reaches the
       procedure; treat as unknown rather than claiming dead-code
       constants.  Finalize in place: [formals]/[gvals] double as the
       entry lookup the SCC entry environment reads below. *)
    for j = 0 to nf - 1 do
      if formals.(j) = P.top then formals.(j) <- P.bot
    done;
    for k = 0 to Array.length gvals - 1 do
      if gvals.(k) = P.top then gvals.(k) <- P.bot
    done;
    (* Decode to the boxed entry only at the Solution boundary; [gids] is
       sorted, so [pe_globals] comes out in canonical id order. *)
    let pe_formals = Array.map P.to_t formals in
    let pe_globals =
      let acc = ref [] in
      for k = Array.length gids - 1 downto 0 do
        acc := (gids.(k), P.to_t gvals.(k)) :: !acc
      done;
      !acc
    in
    entries_arr.(i) <- { Solution.pe_formals; pe_globals };
    (* One flow-sensitive intraprocedural analysis of [proc]. *)
    let is_main = String.equal proc main in
    let entry_env (v : Ir.var) : int =
      match v.Ir.vkind with
      | Ir.Formal i -> if i < nf then formals.(i) else P.bot
      | Ir.Global -> (
          let k = gfind (Prog.Var.to_int v.Ir.vid) in
          if k >= 0 then gvals.(k)
          else if
            (* Not in the REF closure but still versioned (e.g. only in
               the MOD closure of some callee): unknown at entry unless
               this is [main] and block data initialises it. *)
            is_main
          then
            match Hashtbl.find_opt blockdata_tbl (Prog.Var.to_int v.Ir.vid) with
            | Some w -> w
            | None -> P.bot
          else P.bot)
      | Ir.Local | Ir.Temp -> P.bot
    in
    let ssa = Context.ssa_at ctx pid in
    let call_sites = Ssa.call_sites ssa in
    let cdv =
      match call_def_value with
      | None -> Scc.default_config.Scc.call_def_value
      | Some f ->
          (* The SCC core keys call effects by callee name; when several
             calls to the same callee define the same variable, meet their
             summaries (conservative and rare).  The calls are indexed by
             callee once, so each query folds only that callee's sites. *)
          let by_callee : (string, Ssa.call list) Hashtbl.t =
            Hashtbl.create 8
          in
          List.iter
            (fun (_, _, (c : Ssa.call)) ->
              Hashtbl.replace by_callee c.Ssa.c_callee
                (c
                :: Option.value
                     (Hashtbl.find_opt by_callee c.Ssa.c_callee)
                     ~default:[]))
            (List.rev call_sites);
          fun ~callee v ->
            List.fold_left
              (fun acc (c : Ssa.call) -> P.meet acc (f ~caller:proc c v))
              P.top
              (Option.value (Hashtbl.find_opt by_callee callee) ~default:[])
            |> fun r -> if r = P.top then P.bot else r
    in
    let config = { Scc.entry_env; call_def_value = cdv } in
    let res = Scc.run ~config ssa in
    results_arr.(i) <- Some res;
    (* Record call-site values for the callees' later meets. *)
    let recs =
      List.map
        (fun (b, _, (c : Ssa.call)) ->
          let executable = res.Scc.block_executable.(b) in
          let cr_args =
            Array.mapi
              (fun j _ ->
                if executable then
                  P.to_t (Context.censor_w ctx (Scc.arg_value_w res c j))
                else Lattice.Top)
              c.Ssa.c_args
          in
          let cr_globals =
            Array.to_list c.Ssa.c_global_uses
            |> List.map (fun ((g : Ir.var), (n : Ssa.name)) ->
                   ( g.Ir.vid,
                     if executable then
                       P.to_t
                         (Context.censor_w ctx res.Scc.values.(n.Ssa.id))
                     else Lattice.Top ))
          in
          let cr =
            {
              Solution.cr_caller = pid;
              cr_cs_index = c.Ssa.c_cs_id;
              cr_callee = Callgraph.proc_id_exn pcg c.Ssa.c_callee;
              cr_executable = executable;
              cr_args;
              cr_globals;
            }
          in
          record_idx.(i).(c.Ssa.c_cs_id) <- Some cr;
          cr)
        call_sites
    in
    records_arr.(i) <- recs;
    (* Streaming solves must not retain each procedure's SSA through the
       retained [Scc.result]: once the records are extracted the result
       keeps every per-name array (the canonical digest reads those) but
       its SSA field is retired to [None] — any later accessor that needs
       the structure raises instead of reading stale state. *)
    if streaming then begin
      results_arr.(i) <- Some { res with Scc.proc = None };
      Context.retire ctx pid
    end
  in

  (match dirty_mask with
  | None ->
      (* From-scratch solves shard the frontier: contiguous SCC-whole id
         regions, ~4 per domain, each domain owning its regions' nodes on
         a private stack.  The canonical assembly below makes the solution
         independent of the sharding, so this is purely a scheduling
         change (verified by the digest-equality tests). *)
      let bounds = shard_regions pcg ~parts:(4 * jobs) in
      let owners = owners_of_regions bounds ~jobs ~n in
      Par.wavefront_sharded ~jobs ~owners
        ~order:(Array.init n (fun i -> i))
        ~deps ~dependents process
  | Some m ->
      (* Restrict the wavefront to the dirty cone: a dirty procedure waits
         only on its dirty forward callers (clean callers' records are
         already in [record_idx]), and completion must never enqueue a
         clean node.  Ascending ids are the forward topological order, so
         the sequential path is just an in-order sweep of the cone. *)
      let order =
        match dirty with Some d -> Array.map (fun (p : Prog.Proc.id) -> (p :> int)) d | None -> [||]
      in
      let rdeps = Array.make n [] and rdependents = Array.make n [] in
      Array.iter
        (fun i ->
          rdeps.(i) <- List.filter (fun c -> m.(c)) deps.(i);
          rdependents.(i) <- List.filter (fun d -> m.(d)) dependents.(i))
        order;
      Par.wavefront ~jobs ~order ~deps:rdeps ~dependents:rdependents process);

  (* Canonical normalisation point: assemble per-procedure outputs in
     forward (reverse postorder) node order, so the recorded call-record
     order — and hence the whole solution — is identical for every [jobs]. *)
  let db = pcg.Callgraph.db in
  let entries = Prog.tbl_init db (fun pid -> entries_arr.((pid :> int))) in
  let scc_results = Prog.tbl_init db (fun pid -> results_arr.((pid :> int))) in
  let call_records = List.concat (Array.to_list records_arr) in
  Solution.make ~method_name ~db ~entries ~call_records ~scc_runs:n ~scc_results

let solve ?jobs ?fi
    ?(call_def_value :
       (caller:string -> Ssa.call -> Ir.var -> int) option)
    (ctx : Context.t) : Solution.t =
  Trace.next_epoch ();
  Trace.span "fs:solve" (fun () -> solve_body ?jobs ?fi ?call_def_value ctx)

(** Incremental re-solve after a shape-preserving procedure edit.

    [dirty] is the downstream wavefront cone ({!Callgraph.cone}) of the
    edited procedures plus every callee of a back edge whose
    flow-insensitive record changed; [fi] is the {e fresh} flow-insensitive
    solution of the edited program; [prev] is the previous flow-sensitive
    solution.  Only the cone is re-driven through the wavefront; everything
    outside it is copied from [prev].  The result is identical — including
    [scc_runs], which counts one flow-sensitive analysis per procedure, the
    solution-shape invariant — to a from-scratch {!solve} at any [jobs];
    the actual kernel work shows up in the trace counters instead
    (["fs.resolve.dirty"], ["fs.resolve.reused"], ["scc.memo_hits"]). *)
let resolve ?jobs ~(fi : Solution.t) ~(prev : Solution.t)
    ~(dirty : Prog.Proc.id array) (ctx : Context.t) : Solution.t =
  Trace.next_epoch ();
  Trace.span "fs:resolve" @@ fun () ->
  let n = Array.length ctx.Context.pcg.Callgraph.nodes in
  Trace.add c_resolve_dirty (Array.length dirty);
  Trace.add c_resolve_reused (n - Array.length dirty);
  (* Small dirty regions run sequentially regardless of the requested
     [jobs]: spawning a worker pool costs on the order of a millisecond,
     more than re-solving a handful of procedures outright.  Results are
     identical at every jobs count by construction, so the clamp is purely
     a latency decision. *)
  let jobs = if Array.length dirty < 24 then Some 1 else jobs in
  solve_body ?jobs ~fi ~prev ~dirty ctx
