(** Differential soundness oracle — see the interface for the contract.

    Implementation notes: every check is expressed against the reference
    interpreter ({!Fsicp_interp.Interp}) or against another method's
    solution, never against the implementation under test, so a bug in any
    one layer (lattice, SCC kernel, wavefront scheduler, transform) shows
    up as a cross-check violation.  All checks return the {e first} witness
    only; the shrinker re-runs the whole oracle per candidate, so one
    witness is all it needs. *)

open Fsicp_lang
open Fsicp_core
module I = Fsicp_interp.Interp
module L = Fsicp_scc.Lattice
module Prog = Fsicp_prog.Prog
module Trace = Fsicp_trace.Trace

(* Fuzzing-campaign outcome tallies; the split (not the total) depends on
   which seeds are run, so both are deterministic per seed set. *)
let c_checks_ok = Trace.counter "oracle.checks_ok"
let c_checks_failed = Trace.counter "oracle.checks_failed"

type failure = { f_check : string; f_detail : string }

let pp_failure ppf f = Fmt.pf ppf "%s: %s" f.f_check f.f_detail
let default_fuel = 500_000
let fail_check f_check fmt = Fmt.kstr (fun f_detail -> { f_check; f_detail }) fmt

let reachable_procs (ctx : Context.t) : string list =
  let pcg = ctx.Context.pcg in
  Array.to_list pcg.Fsicp_callgraph.Callgraph.nodes
  |> List.map (Fsicp_callgraph.Callgraph.proc_name pcg)

(* ------------------------------------------------------------------ *)
(* The precision partial order                                         *)
(* ------------------------------------------------------------------ *)

let formal_at (e : Solution.proc_entry) i =
  if i < Array.length e.Solution.pe_formals then e.Solution.pe_formals.(i)
  else L.Bot

(* Globals absent from an entry are unknown: ⊥ (see Solution.global_value). *)
let global_at (e : Solution.proc_entry) g =
  match List.assoc_opt g e.Solution.pe_globals with
  | Some v -> v
  | None -> L.Bot

let entry_le_witness proc (ea : Solution.proc_entry)
    (eb : Solution.proc_entry) : string option =
  let n_formals =
    max
      (Array.length ea.Solution.pe_formals)
      (Array.length eb.Solution.pe_formals)
  in
  let formal_violation =
    List.find_opt
      (fun i -> not (L.le (formal_at ea i) (formal_at eb i)))
      (List.init n_formals (fun i -> i))
  in
  match formal_violation with
  | Some i ->
      Some
        (Printf.sprintf "%s: formal #%d: %s ⋢ %s" proc i
           (L.to_string (formal_at ea i))
           (L.to_string (formal_at eb i)))
  | None ->
      let keys =
        List.map fst ea.Solution.pe_globals
        @ List.map fst eb.Solution.pe_globals
        |> List.sort_uniq Prog.Var.compare
      in
      List.find_opt (fun g -> not (L.le (global_at ea g) (global_at eb g))) keys
      |> Option.map (fun g ->
             Printf.sprintf "%s: global %s: %s ⋢ %s" proc (Prog.Var.name g)
               (L.to_string (global_at ea g))
               (L.to_string (global_at eb g)))

let solution_le_witness (a : Solution.t) (b : Solution.t)
    ~(procs : string list) : string option =
  List.find_map
    (fun proc ->
      entry_le_witness proc (Solution.entry a proc) (Solution.entry b proc))
    procs

let solution_le a b ~procs = Option.is_none (solution_le_witness a b ~procs)

(* Procedures whose FS entries no PCG back edge can influence: everything
   outside the forward cone of the back-edge callees.  On these the
   optimistic jump-function fixpoints and FS's FI-seeded treatment agree
   about recursion (there is none to disagree about), so the two
   hierarchy comparisons *into* FS hold there even in cyclic programs. *)
let cycle_free_procs (ctx : Context.t) : string list =
  let module CG = Fsicp_callgraph.Callgraph in
  let pcg = ctx.Context.pcg in
  let procs = reachable_procs ctx in
  let seeds =
    List.filter_map
      (fun e -> if e.CG.back then Some e.CG.callee else None)
      pcg.CG.edges
    |> List.sort_uniq Stdlib.compare
  in
  match seeds with
  | [] -> procs
  | _ ->
      let tainted = CG.cone pcg ~seeds in
      let tainted_names =
        Array.to_list (Array.map (CG.proc_name pcg) tainted)
      in
      List.filter
        (fun p -> not (List.exists (String.equal p) tainted_names))
        procs

(* ------------------------------------------------------------------ *)
(* Interpreter-backed soundness                                        *)
(* ------------------------------------------------------------------ *)

(* Check one traced event (entry or exit) against claimed formal/global
   values: a [Const] claim must equal the observed value exactly. *)
let event_violation ~what (ev : I.entry_event) ~(formal_claim : int -> L.t)
    ~(global_claim : Prog.Var.id -> L.t) : string option =
  let formal =
    List.find_mapi
      (fun i (fname, actual) ->
        match formal_claim i with
        | L.Const claimed when not (Value.equal claimed actual) ->
            Some
              (Printf.sprintf "%s: formal %s claimed %s at %s but observed %s"
                 ev.I.ev_proc fname (Value.to_string claimed) what
                 (Value.to_string actual))
        | L.Const _ | L.Top | L.Bot -> None)
      ev.I.ev_formals
  in
  match formal with
  | Some _ as v -> v
  | None ->
      List.find_map
        (fun (gname, actual) ->
          match global_claim (Prog.Var.intern gname) with
          | L.Const claimed when not (Value.equal claimed actual) ->
              Some
                (Printf.sprintf
                   "%s: global %s claimed %s at %s but observed %s"
                   ev.I.ev_proc gname (Value.to_string claimed) what
                   (Value.to_string actual))
          | L.Const _ | L.Top | L.Bot -> None)
        ev.I.ev_globals

let check_solution_sound ?(fuel = default_fuel) (prog : Ast.program)
    (sol : Solution.t) : (unit, string) result =
  match I.run_opt ~fuel prog with
  | None -> Ok () (* diverging or erroring programs constrain nothing *)
  | Some r -> (
      List.find_map
        (fun (ev : I.entry_event) ->
          let entry = Solution.entry sol ev.I.ev_proc in
          event_violation ~what:"entry" ev
            ~formal_claim:(formal_at entry)
            ~global_claim:(fun g ->
              match List.assoc_opt g entry.Solution.pe_globals with
              | Some v -> v
              | None -> L.Bot))
        r.I.entries
      |> function
      | Some v -> Error v
      | None -> Ok ())

let check_returns_sound ?(fuel = default_fuel) (prog : Ast.program)
    (rc : Return_consts.t) : (unit, string) result =
  match I.run_opt ~fuel prog with
  | None -> Ok ()
  | Some r -> (
      List.find_map
        (fun (ev : I.entry_event) ->
          match Return_consts.summary_of rc ev.I.ev_proc with
          | None -> None
          | Some s ->
              event_violation ~what:"exit" ev
                ~formal_claim:(fun i ->
                  if i < Array.length s.Return_consts.rs_formals then
                    s.Return_consts.rs_formals.(i)
                  else L.Bot)
                ~global_claim:(fun g ->
                  match List.assoc_opt g s.Return_consts.rs_globals with
                  | Some v -> v
                  | None -> L.Bot))
        r.I.exits
      |> function
      | Some v -> Error v
      | None -> Ok ())

(* ------------------------------------------------------------------ *)
(* The full per-program oracle                                         *)
(* ------------------------------------------------------------------ *)

let prints_of ~fuel prog = Option.map (fun r -> r.I.prints) (I.run_opt ~fuel prog)

let describe_prints = function
  | None -> "<diverges or errors>"
  | Some vs ->
      Printf.sprintf "[%s]" (String.concat "; " (List.map Value.to_string vs))

(* Observational equivalence of a transformed program against the source's
   prints.  [strict] demands divergence agree too (entry-constant
   insertion, inlining, cloning are step-for-step faithful); folding may
   legitimately terminate where the fuel-bounded source did not. *)
let equiv_violation ~fuel ~what ~reference prog' : string option =
  match Sema.check prog' with
  | Error es ->
      Some
        (Printf.sprintf "%s output is not Sema-clean: %s" what
           (Sema.errors_to_string es))
  | Ok () -> (
      let out' = prints_of ~fuel prog' in
      match (reference, out') with
      | Some a, Some b when List.equal Value.equal a b -> None
      | None, None -> None
      | None, Some _ when String.equal what "fold" ->
          (* The source ran out of fuel; the folded program doing less work
             and terminating is legitimate. *)
          None
      | _ ->
          Some
            (Printf.sprintf "%s changed behaviour: source prints %s, %s prints %s"
               what (describe_prints reference) what (describe_prints out')))

(* Solutions compared entry-for-entry; used by the jobs-determinism check,
   where any difference — value, global set, formal count — is a bug. *)
let entry_equal_witness proc (ea : Solution.proc_entry)
    (eb : Solution.proc_entry) : string option =
  if
    Array.length ea.Solution.pe_formals <> Array.length eb.Solution.pe_formals
  then Some (Printf.sprintf "%s: formal counts differ" proc)
  else
    match
      List.find_opt
        (fun i ->
          not (L.equal ea.Solution.pe_formals.(i) eb.Solution.pe_formals.(i)))
        (List.init (Array.length ea.Solution.pe_formals) (fun i -> i))
    with
    | Some i ->
        Some
          (Printf.sprintf "%s: formal #%d: %s vs %s" proc i
             (L.to_string ea.Solution.pe_formals.(i))
             (L.to_string eb.Solution.pe_formals.(i)))
    | None ->
        let keys =
          List.map fst ea.Solution.pe_globals
          @ List.map fst eb.Solution.pe_globals
          |> List.sort_uniq Prog.Var.compare
        in
        List.find_opt
          (fun g -> not (L.equal (global_at ea g) (global_at eb g)))
          keys
        |> Option.map (fun g ->
               Printf.sprintf "%s: global %s: %s vs %s" proc (Prog.Var.name g)
                 (L.to_string (global_at ea g))
                 (L.to_string (global_at eb g)))

let check_program_body ?(fuel = default_fuel) ?jobs (prog : Ast.program) :
    (unit, failure) result =
  let jobs =
    match jobs with
    | Some j -> max 2 j
    | None -> max 2 (Fsicp_par.Par.default_jobs ())
  in
  let ctx = Context.create ~jobs:1 prog in
  let procs = reachable_procs ctx in
  let fi = Fi_icp.solve ctx in
  let fs = Fs_icp.solve ~jobs:1 ~fi ctx in
  let reference = Reference.solve ctx in
  let jf v = Jump_functions.solve ctx v in
  let literal = jf Jump_functions.Literal in
  let intra = jf Jump_functions.Intra in
  let pass = jf Jump_functions.Pass_through in
  let poly = jf Jump_functions.Polynomial in
  let cc = Cc_icp.solve ctx in
  let vc = Vc_icp.solve ctx in
  let methods =
    [
      ("literal", literal);
      ("intra", intra);
      ("pass", pass);
      ("poly", poly);
      ("fi", fi);
      ("fs", fs);
      ("cc", cc);
      ("vc", vc);
      ("ref", reference);
    ]
  in
  let ( let* ) r f = match r with Some failure -> Error failure | None -> f () in
  (* (a) interpreter soundness of every method's entry constants *)
  let* () =
    List.find_map
      (fun (name, sol) ->
        match check_solution_sound ~fuel prog sol with
        | Ok () -> None
        | Error detail -> Some (fail_check ("sound:" ^ name) "%s" detail))
      methods
  in
  (* (a') soundness of the return-constants exit summaries, and of the FS
     re-solve that consumes them *)
  let rc = Return_consts.compute ctx ~fs in
  let* () =
    match check_returns_sound ~fuel prog rc with
    | Ok () -> None
    | Error detail -> Some (fail_check "sound:returns" "%s" detail)
  in
  let fs_rc =
    Fs_icp.solve ~jobs:1
      ~call_def_value:(Return_consts.as_oracle rc ~censor:(Context.censor_w ctx))
      ctx
  in
  let* () =
    match check_solution_sound ~fuel prog fs_rc with
    | Ok () -> None
    | Error detail -> Some (fail_check "sound:fs+returns" "%s" detail)
  in
  (* (b) the paper's method hierarchy, formals and globals.  The two
     comparisons *into* FS fail only where recursion is in play: at a back
     edge the jump-function methods' optimistic fixpoint can legitimately
     beat FS's pessimistic FI-plug-in, and the damage propagates only
     forward from there.  So instead of skipping cyclic programs wholesale,
     exempt exactly the procedures in or downstream of a cycle — the
     forward cone seeded by the back-edge callees — and keep checking the
     acyclic region, whose entries are untouched by any back edge. *)
  let cycle_free_procs = cycle_free_procs ctx in
  let hierarchy =
    [
      ("literal⊑intra", literal, intra, procs);
      ("intra⊑pass", intra, pass, procs);
      ("pass⊑poly", pass, poly, procs);
      ("fs⊑ref", fs, reference, procs);
      ("fs⊑cc", fs, cc, procs);
      ("fs⊑vc", fs, vc, procs);
      ("poly⊑fs", poly, fs, cycle_free_procs);
      ("fi⊑fs", fi, fs, cycle_free_procs);
    ]
  in
  let* () =
    List.find_map
      (fun (name, a, b, procs) ->
        solution_le_witness a b ~procs
        |> Option.map (fun w -> fail_check ("hierarchy:" ^ name) "%s" w))
      hierarchy
  in
  (* (c) observational equivalence of the transformations *)
  let reference_prints = prints_of ~fuel prog in
  let transforms =
    [
      ("insert", fun () -> Transform.insert_entry_constants ctx fs);
      ("fold", fun () -> Fold.fold_program ctx fs);
      ("inline", fun () -> fst (Inline.inline_program ctx ()));
      ("clone", fun () -> fst (Clone.clone_by_constants ctx ~fs ()));
    ]
  in
  let* () =
    List.find_map
      (fun (what, transform) ->
        equiv_violation ~fuel ~what ~reference:reference_prints (transform ())
        |> Option.map (fun w -> fail_check ("equiv:" ^ what) "%s" w))
      transforms
  in
  (* (d) jobs-determinism: an independent context and solve on N domains
     must reproduce the sequential solution bit-for-bit *)
  let ctx_par = Context.create ~jobs prog in
  let fs_par = Fs_icp.solve ~jobs ctx_par in
  let* () =
    List.find_map
      (fun proc ->
        entry_equal_witness proc (Solution.entry fs proc)
          (Solution.entry fs_par proc)
        |> Option.map (fun w ->
               fail_check "determinism:jobs" "jobs=1 vs jobs=%d: %s" jobs w))
      procs
  in
  let* () =
    if fs.Solution.scc_runs <> fs_par.Solution.scc_runs then
      Some
        (fail_check "determinism:jobs" "scc_runs: %d (jobs=1) vs %d (jobs=%d)"
           fs.Solution.scc_runs fs_par.Solution.scc_runs jobs)
    else None
  in
  Ok ()

let check_program ?fuel ?jobs (prog : Ast.program) : (unit, failure) result =
  Trace.span "oracle:program" @@ fun () ->
  let r = check_program_body ?fuel ?jobs prog in
  (match r with
  | Ok () -> Trace.incr c_checks_ok
  | Error _ -> Trace.incr c_checks_failed);
  r

let program_of_seed seed =
  Fsicp_workloads.Generator.generate
    (Fsicp_workloads.Generator.small_profile seed)

let check_seed ?fuel ?jobs seed =
  Trace.span
    ~args:(fun () -> [ ("seed", string_of_int seed) ])
    "oracle:seed"
    (fun () -> check_program ?fuel ?jobs (program_of_seed seed))

(* ------------------------------------------------------------------ *)
(* Translation validation                                              *)
(* ------------------------------------------------------------------ *)

let check_transform_vc ?fuel (prog : Ast.program) : (unit, failure) result =
  Trace.span "oracle:vc" @@ fun () ->
  let module V = Fsicp_verify.Verify in
  let ctx = Context.create ~jobs:1 prog in
  let fs = Fs_icp.solve ~jobs:1 ctx in
  let reports = V.verify_program ?fuel ctx ~solution:fs in
  let refuted =
    List.find_map
      (fun r ->
        List.find_map
          (fun vc ->
            match vc.V.vc_verdict with
            | V.Refuted cx -> Some (r.V.r_transform, vc, cx)
            | V.Proved | V.Inconclusive _ -> None)
          r.V.r_vcs)
      reports
  in
  match refuted with
  | None -> Ok ()
  | Some (transform, vc, cx) ->
      Error
        (fail_check ("vc:" ^ transform)
           "%s is not equivalent to %s: with %s the source prints [%s] but \
            the transformed program prints [%s]"
           vc.V.vc_proc vc.V.vc_counterpart
           (String.concat ", "
              (List.map
                 (fun (n, v) -> Printf.sprintf "%s=%s" n (Value.to_string v))
                 (cx.V.cx_formals @ cx.V.cx_globals)))
           (String.concat "; " (List.map Value.to_string cx.V.cx_orig_prints))
           (String.concat "; " (List.map Value.to_string cx.V.cx_trans_prints)))

(* ------------------------------------------------------------------ *)
(* Incremental re-analysis: edit sequences                              *)
(* ------------------------------------------------------------------ *)

(* Edit-sequence campaign tallies, mirroring the per-program counters. *)
let c_edit_checks_ok = Trace.counter "oracle.edit_checks_ok"
let c_edit_checks_failed = Trace.counter "oracle.edit_checks_failed"

(* The canonical name-keyed print (shared with the serve daemon): two
   solutions are byte-identical iff their digests are equal. *)
let solution_digest = Solution.digest

(* Statement/expression rebuilding for the edit mutators. *)
let rec map_stmts fe body =
  List.map
    (fun (s : Ast.stmt) ->
      let sdesc =
        match s.Ast.sdesc with
        | Ast.Assign (x, e) -> Ast.Assign (x, fe e)
        | Ast.If (c, t, f) -> Ast.If (fe c, map_stmts fe t, map_stmts fe f)
        | Ast.While (c, bd) -> Ast.While (fe c, map_stmts fe bd)
        | Ast.Call (p, args) -> Ast.Call (p, List.map fe args)
        | Ast.Return -> Ast.Return
        | Ast.Print e -> Ast.Print (fe e)
      in
      { s with Ast.sdesc })
    body

let rec map_expr f (e : Ast.expr) =
  match e with
  | Ast.Const v -> f v
  | Ast.Var _ -> e
  | Ast.Unary (o, e) -> Ast.Unary (o, map_expr f e)
  | Ast.Binary (o, a, b) -> Ast.Binary (o, map_expr f a, map_expr f b)

(* Replace the [k]-th literal of the body (in map traversal order) using
   [mk]; identity when the body has fewer than [k+1] literals. *)
let replace_literal ~k ~mk body =
  let i = ref 0 in
  map_stmts
    (map_expr (fun v ->
         let j = !i in
         incr i;
         Ast.Const (if j = k then mk v else v)))
    body

let count_literals body =
  let i = ref 0 in
  ignore
    (map_stmts
       (map_expr (fun v ->
            incr i;
            Ast.Const v))
       body);
  !i

(** One random procedure edit.  The distribution leans on shape-preserving
    mutations — literal tweaks (including call-argument literals, whose
    summaries change only in their [Alit] payload), appended local
    assignments and prints, and the occasional no-op — but also appends a
    brand-new call site ~1 time in 8, which changes the program shape and
    forces the engine's full-rebuild route.  Every produced program is
    [Sema]-clean by construction. *)
let random_edit (rng : Random.State.t) (prog : Ast.program) : Ast.proc =
  let procs = Array.of_list prog.Ast.procs in
  let p = procs.(Random.State.int rng (Array.length procs)) in
  let lit () = Value.Int (Random.State.int rng 199 - 99) in
  let append s = { p with Ast.body = p.Ast.body @ [ s ] } in
  let stmt sdesc = { Ast.sdesc; spos = Ast.no_pos } in
  let roll = Random.State.int rng 16 in
  if roll < 8 then begin
    (* Tweak one literal in place (falling back to an appended print when
       the body has none). *)
    let n = count_literals p.Ast.body in
    if n = 0 then append (stmt (Ast.Print (Ast.Const (lit ()))))
    else
      let k = Random.State.int rng n in
      { p with Ast.body = replace_literal ~k ~mk:(fun _ -> lit ()) p.Ast.body }
  end
  else if roll < 10 then append (stmt (Ast.Print (Ast.Const (lit ()))))
  else if roll < 12 then
    append (stmt (Ast.Assign ("zz_edit_tmp", Ast.Const (lit ()))))
  else if roll < 14 then p (* no-op: re-submit the current body verbatim *)
  else begin
    (* Shape-changing: append a call to a random procedure, literal
       arguments (by-value temporaries, so Sema stays clean). *)
    let q = procs.(Random.State.int rng (Array.length procs)) in
    let args = List.map (fun _ -> Ast.Const (lit ())) q.Ast.formals in
    append (stmt (Ast.Call (q.Ast.pname, args)))
  end

let describe_outcome = function
  | Engine.Incremental { dirty; total } ->
      Printf.sprintf "incremental dirty=%d/%d" dirty total
  | Engine.Rebuilt reason -> Printf.sprintf "rebuilt (%s)" reason

(** Drive the same random edit sequence through two live engines
    ([jobs = 1] and [jobs = N]) and, after {e every} edit, demand both
    engines' solutions be byte-identical — via {!solution_digest} — to a
    from-scratch solve of the current program.  This is the incremental
    engine's whole correctness contract in one check. *)
let check_edit_sequence_body ?jobs ?(edits = 5) seed : (unit, failure) result =
  let jobs =
    match jobs with
    | Some j -> max 2 j
    | None -> max 2 (Fsicp_par.Par.default_jobs ())
  in
  let prog = program_of_seed seed in
  let rng = Random.State.make [| 0x5eed17; seed |] in
  let e1 = Engine.create ~jobs:1 prog in
  let en = Engine.create ~jobs prog in
  let rec go i =
    if i > edits then Ok ()
    else begin
      let p = random_edit rng (Engine.context e1).Context.prog in
      let o1 = Engine.edit_proc ~jobs:1 e1 p in
      let on = Engine.edit_proc ~jobs en p in
      let cur = (Engine.context e1).Context.prog in
      let ctx = Context.create ~jobs:1 cur in
      let fi = Fi_icp.solve ctx in
      let fs = Fs_icp.solve ~jobs:1 ~fi ctx in
      let d_ref = solution_digest fs in
      let d1 = solution_digest (Engine.solution e1) in
      let dn = solution_digest (Engine.solution en) in
      if
        not
          (String.equal (describe_outcome o1) (describe_outcome on))
      then
        Error
          (fail_check "incremental:outcome"
             "edit %d of %d (proc %s): jobs=1 chose %s, jobs=%d chose %s" i
             edits p.Ast.pname (describe_outcome o1) jobs
             (describe_outcome on))
      else if not (String.equal d1 d_ref) then
        Error
          (fail_check "incremental:jobs1"
             "edit %d of %d (proc %s, %s): solution diverged from from-scratch"
             i edits p.Ast.pname (describe_outcome o1))
      else if not (String.equal dn d_ref) then
        Error
          (fail_check "incremental:jobsN"
             "edit %d of %d (proc %s, %s): jobs=%d solution diverged from \
              from-scratch"
             i edits p.Ast.pname (describe_outcome on) jobs)
      else go (i + 1)
    end
  in
  match go 1 with
  | Error _ as e -> e
  | Ok () ->
      (* The beyond-the-paper methods ride the same smoke: on the
         post-edit program, cc and vc must be interpreter-sound and sit
         above FS in the extended hierarchy. *)
      let cur = (Engine.context e1).Context.prog in
      let ctx = Context.create ~jobs:1 cur in
      let fs = Fs_icp.solve ~jobs:1 ctx in
      let procs = reachable_procs ctx in
      List.find_map
        (fun (name, sol) ->
          match check_solution_sound cur sol with
          | Error detail -> Some (fail_check ("sound:" ^ name) "%s" detail)
          | Ok () ->
              solution_le_witness fs sol ~procs
              |> Option.map (fun w ->
                     fail_check ("hierarchy:fs⊑" ^ name) "after %d edits: %s"
                       edits w))
        [ ("cc", Cc_icp.solve ctx); ("vc", Vc_icp.solve ctx) ]
      |> Option.fold ~none:(Ok ()) ~some:(fun f -> Error f)

let check_edit_sequence ?jobs ?edits seed : (unit, failure) result =
  Trace.span
    ~args:(fun () -> [ ("seed", string_of_int seed) ])
    "oracle:edit-seq"
  @@ fun () ->
  let r = check_edit_sequence_body ?jobs ?edits seed in
  (match r with
  | Ok () -> Trace.incr c_edit_checks_ok
  | Error _ -> Trace.incr c_edit_checks_failed);
  r

(* ------------------------------------------------------------------ *)
(* Reproducer corpus                                                   *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write_reproducer ~dir ~name ~failure ?seed prog =
  mkdir_p dir;
  let path = Filename.concat dir (name ^ ".mf") in
  let oc = open_out_bin path in
  let comment fmt =
    Fmt.kstr
      (fun s ->
        String.split_on_char '\n' s
        |> List.iter (fun line -> Printf.fprintf oc "// %s\n" line))
      fmt
  in
  comment "fsicp fuzz reproducer — replayed by `dune runtest` (test_oracle).";
  (match seed with Some s -> comment "seed: %d" s | None -> ());
  comment "check: %s" failure.f_check;
  comment "detail: %s" failure.f_detail;
  output_string oc (Pretty.program_to_string prog);
  close_out oc;
  path
