open Fsicp_lang

(* ------------------------------------------------------------------ *)
(* Pre-order statement numbering                                       *)
(* ------------------------------------------------------------------ *)

let rec stmt_size s =
  match s.Ast.sdesc with
  | Ast.If (_, t, e) -> 1 + block_size t + block_size e
  | Ast.While (_, b) -> 1 + block_size b
  | Ast.Assign _ | Ast.Call _ | Ast.Return | Ast.Print _ -> 1

and block_size b = List.fold_left (fun n s -> n + stmt_size s) 0 b

let stmt_count (p : Ast.program) =
  List.fold_left (fun n pr -> n + block_size pr.Ast.body) 0 p.Ast.procs

(* Rewrite statements by pre-order index.  [f idx stmt] decides the fate
   of the statement numbered [idx]: keep it (recursing into children),
   drop its whole subtree, or splice a replacement block in verbatim.
   The counter always advances by the subtree size, so indices computed
   against the input program stay meaningful for the whole rewrite. *)
let rewrite_stmts f (prog : Ast.program) =
  let counter = ref 0 in
  let rec go_block b = List.concat_map go_stmt b
  and go_stmt s =
    let idx = !counter in
    let size = stmt_size s in
    match f idx s with
    | `Drop ->
        counter := idx + size;
        []
    | `Replace ss ->
        counter := idx + size;
        ss
    | `Keep ->
        incr counter;
        let sdesc =
          match s.Ast.sdesc with
          | Ast.If (c, t, e) ->
              let t = go_block t in
              let e = go_block e in
              Ast.If (c, t, e)
          | Ast.While (c, b) -> Ast.While (c, go_block b)
          | (Ast.Assign _ | Ast.Call _ | Ast.Return | Ast.Print _) as d -> d
        in
        [ { s with Ast.sdesc } ]
  in
  {
    prog with
    Ast.procs =
      List.map (fun p -> { p with Ast.body = go_block p.Ast.body }) prog.Ast.procs;
  }

(* ------------------------------------------------------------------ *)
(* Pre-order expression numbering                                      *)
(* ------------------------------------------------------------------ *)

let rec expr_size = function
  | Ast.Const _ | Ast.Var _ -> 1
  | Ast.Unary (_, e) -> 1 + expr_size e
  | Ast.Binary (_, l, r) -> 1 + expr_size l + expr_size r

(* Rewrite expressions by pre-order index over every expression position
   in the program (right-hand sides, conditions, arguments, print
   operands) and their subexpressions.  [f idx e = Some e'] replaces the
   subexpression wholesale (no recursion into [e']). *)
let rewrite_exprs f (prog : Ast.program) =
  let counter = ref 0 in
  let rec go_expr e =
    let idx = !counter in
    match f idx e with
    | Some e' ->
        counter := idx + expr_size e;
        e'
    | None -> (
        incr counter;
        match e with
        | Ast.Const _ | Ast.Var _ -> e
        | Ast.Unary (op, e1) -> Ast.Unary (op, go_expr e1)
        | Ast.Binary (op, l, r) ->
            let l = go_expr l in
            let r = go_expr r in
            Ast.Binary (op, l, r))
  in
  let rec go_block b = List.map go_stmt b
  and go_stmt s =
    let sdesc =
      match s.Ast.sdesc with
      | Ast.Assign (x, e) -> Ast.Assign (x, go_expr e)
      | Ast.If (c, t, e) ->
          let c = go_expr c in
          let t = go_block t in
          let e = go_block e in
          Ast.If (c, t, e)
      | Ast.While (c, b) ->
          let c = go_expr c in
          Ast.While (c, go_block b)
      | Ast.Call (p, args) -> Ast.Call (p, List.map go_expr args)
      | Ast.Print e -> Ast.Print (go_expr e)
      | Ast.Return -> Ast.Return
    in
    { s with Ast.sdesc }
  in
  {
    prog with
    Ast.procs =
      List.map (fun p -> { p with Ast.body = go_block p.Ast.body }) prog.Ast.procs;
  }

let expr_count (prog : Ast.program) =
  let n = ref 0 in
  List.iter
    (fun p -> Ast.iter_exprs (fun e -> n := !n + expr_size e) p.Ast.body)
    prog.Ast.procs;
  !n

(* ------------------------------------------------------------------ *)
(* The shrink loop                                                     *)
(* ------------------------------------------------------------------ *)

type budget = { mutable checks_left : int; still_fails : Ast.program -> bool }

(* A candidate counts against the budget only when it reaches the
   (expensive) failure predicate; Sema rejections are free. *)
let accept bgt cand =
  bgt.checks_left > 0
  &&
  match Sema.check cand with
  | Error _ -> false
  | Ok () ->
      bgt.checks_left <- bgt.checks_left - 1;
      bgt.still_fails cand

(* Chunked ddmin over the statement sequence: try dropping aligned chunks
   of [chunk] statements, halving the chunk size when no drop at the
   current granularity succeeds. *)
let ddmin_stmts bgt prog =
  let prog = ref prog and improved = ref false in
  let chunk = ref (max 1 (stmt_count !prog / 2)) in
  while !chunk >= 1 && bgt.checks_left > 0 do
    let n = stmt_count !prog in
    let lo = ref 0 and dropped_any = ref false in
    while !lo < n && bgt.checks_left > 0 do
      let hi = !lo + !chunk in
      let cand =
        rewrite_stmts
          (fun idx _ -> if idx >= !lo && idx < hi then `Drop else `Keep)
          !prog
      in
      if stmt_count cand < stmt_count !prog && accept bgt cand then begin
        prog := cand;
        dropped_any := true;
        improved := true
        (* indices shifted; same [lo] now names the next chunk *)
      end
      else lo := hi
    done;
    if not !dropped_any then
      if !chunk = 1 then chunk := 0 else chunk := !chunk / 2
  done;
  (!prog, !improved)

(* Replace an [if] by one of its branches, a [while] by its body. *)
let flatten_compounds bgt prog =
  let prog = ref prog and improved = ref false in
  let continue_ = ref true in
  while !continue_ && bgt.checks_left > 0 do
    continue_ := false;
    let n = stmt_count !prog in
    let idx = ref 0 in
    while !idx < n && bgt.checks_left > 0 do
      let replacements = ref [] in
      let target = !idx in
      ignore
        (rewrite_stmts
           (fun i s ->
             if i = target then
               (match s.Ast.sdesc with
               | Ast.If (_, t, e) -> replacements := [ t; e ]
               | Ast.While (_, b) -> replacements := [ b ]
               | Ast.Assign _ | Ast.Call _ | Ast.Return | Ast.Print _ -> ());
             `Keep)
           !prog);
      let applied =
        List.exists
          (fun block ->
            let cand =
              rewrite_stmts
                (fun i _ -> if i = target then `Replace block else `Keep)
                !prog
            in
            stmt_count cand < stmt_count !prog
            && accept bgt cand
            &&
            (prog := cand;
             improved := true;
             continue_ := true;
             true))
          !replacements
      in
      if not applied then incr idx
    done
  done;
  (!prog, !improved)

let drop_procs bgt prog =
  let prog = ref prog and improved = ref false in
  let continue_ = ref true in
  while !continue_ && bgt.checks_left > 0 do
    continue_ := false;
    List.iter
      (fun (p : Ast.proc) ->
        if (not (String.equal p.Ast.pname !prog.Ast.main)) && not !continue_
        then
          let cand =
            {
              !prog with
              Ast.procs =
                List.filter
                  (fun q -> not (String.equal q.Ast.pname p.Ast.pname))
                  !prog.Ast.procs;
            }
          in
          if accept bgt cand then begin
            prog := cand;
            improved := true;
            continue_ := true
          end)
      !prog.Ast.procs
  done;
  (!prog, !improved)

(* Undeclaring a global turns its uses into procedure-locals (initialised
   to 0); the candidate is only kept if the failure survives that change
   of meaning, so this is safe. *)
let drop_globals bgt prog =
  let prog = ref prog and improved = ref false in
  let continue_ = ref true in
  while !continue_ && bgt.checks_left > 0 do
    continue_ := false;
    (* First try removing block-data initialisers alone. *)
    List.iter
      (fun (g, _) ->
        if not !continue_ then
          let cand =
            {
              !prog with
              Ast.blockdata =
                List.filter
                  (fun (g', _) -> not (String.equal g g'))
                  !prog.Ast.blockdata;
            }
          in
          if accept bgt cand then begin
            prog := cand;
            improved := true;
            continue_ := true
          end)
      !prog.Ast.blockdata;
    List.iter
      (fun g ->
        if not !continue_ then
          let cand =
            {
              !prog with
              Ast.globals =
                List.filter (fun g' -> not (String.equal g g')) !prog.Ast.globals;
              Ast.blockdata =
                List.filter
                  (fun (g', _) -> not (String.equal g g'))
                  !prog.Ast.blockdata;
            }
          in
          if accept bgt cand then begin
            prog := cand;
            improved := true;
            continue_ := true
          end)
      !prog.Ast.globals
  done;
  (!prog, !improved)

(* Candidate replacements for a subexpression, ordered simplest-first.
   The relation is well-founded: operand extraction shrinks the tree and
   the constant chain bottoms out at [0]. *)
let expr_candidates = function
  | Ast.Binary (_, l, r) -> [ l; r; Ast.Const (Value.Int 0); Ast.Const (Value.Int 1) ]
  | Ast.Unary (_, e) -> [ e; Ast.Const (Value.Int 0) ]
  | Ast.Var _ -> [ Ast.Const (Value.Int 0); Ast.Const (Value.Int 1) ]
  | Ast.Const (Value.Int 0) -> []
  | Ast.Const (Value.Int 1) -> [ Ast.Const (Value.Int 0) ]
  | Ast.Const _ -> [ Ast.Const (Value.Int 0); Ast.Const (Value.Int 1) ]

let simplify_exprs bgt prog =
  let prog = ref prog and improved = ref false in
  let idx = ref 0 in
  while !idx < expr_count !prog && bgt.checks_left > 0 do
    let target = !idx in
    let subject = ref None in
    ignore
      (rewrite_exprs
         (fun i e ->
           if i = target then subject := Some e;
           None)
         !prog);
    let applied =
      match !subject with
      | None -> false
      | Some e ->
          List.exists
            (fun repl ->
              (not (Ast.equal_expr repl e))
              &&
              let cand =
                rewrite_exprs
                  (fun i _ -> if i = target then Some repl else None)
                  !prog
              in
              accept bgt cand
              &&
              (prog := cand;
               improved := true;
               true))
            (expr_candidates e)
    in
    (* On success re-examine the same index: the replacement may itself
       simplify further. *)
    if not applied then incr idx
  done;
  (!prog, !improved)

let shrink ?(max_checks = 5000) ~still_fails prog =
  let bgt = { checks_left = max_checks; still_fails } in
  let prog = ref prog in
  let continue_ = ref true in
  while !continue_ && bgt.checks_left > 0 do
    continue_ := false;
    List.iter
      (fun pass ->
        let p', improved = pass bgt !prog in
        prog := p';
        if improved then continue_ := true)
      [ ddmin_stmts; flatten_compounds; drop_procs; drop_globals; simplify_exprs ]
  done;
  !prog
