(** Differential soundness oracle: every cross-method invariant the paper's
    precision hierarchy rests on, machine-checked per program.

    For one program the oracle checks

    - {b soundness}: every entry constant (formals {e and} globals) each of
      the six methods claims — the four jump-function baselines, FI-ICP and
      FS-ICP — plus the iterative reference and the two beyond-the-paper
      methods (copy-constant {!Cc_icp}, value-context {!Vc_icp}), equals
      the value the reference interpreter observes at every dynamic
      procedure entry; and every exit constant the return-constants
      extension claims holds at every dynamic procedure exit;
    - {b hierarchy}: the paper's Figure-1/Table-5 partial order
      (literal ⊑ intra ⊑ pass-through ⊑ polynomial ⊑ FS, FI ⊑ FS, FS ⊑
      iterative reference) extended with FS ⊑ CC and FS ⊑ VC, on formals
      {e and} globals — the two
      comparisons into FS only on procedures neither inside nor downstream
      of a PCG cycle (the forward cone of the back-edge callees), since
      there the jump-function methods' optimistic fixpoint can
      legitimately beat FS's pessimistic FI-based back-edge treatment; the
      acyclic region of a cyclic program is still checked;
    - {b observational equivalence}: the [Transform]/[Fold]/[Inline]/
      [Clone] outputs print the same values as the source program;
    - {b determinism}: [Fs_icp.solve] produces the identical solution under
      [jobs = 1] and [jobs = N].

    The oracle is the shared definition used by the test suites and by the
    [fsicp fuzz] harness; on a failure, {!Fsicp_oracle.Shrink} reduces the
    program to a minimal reproducer. *)

open Fsicp_lang
open Fsicp_core

(** One oracle violation: which check tripped, and a human-readable
    description of the first witness. *)
type failure = {
  f_check : string;  (** e.g. ["sound:poly"], ["hierarchy:fi⊑fs"] *)
  f_detail : string;
}

val pp_failure : failure Fmt.t

(** Interpreter budget used by every check (default [500_000]). *)
val default_fuel : int

(** [solution_le a b ~procs] — the paper's precision partial order on whole
    solutions: every formal {e and} every global entry value of [a] is ⊑
    the corresponding value of [b] (globals missing from an entry are ⊥).
    The single shared definition of the method-hierarchy order. *)
val solution_le : Solution.t -> Solution.t -> procs:string list -> bool

(** Like {!solution_le} but returns a description of the first violating
    (procedure, slot) instead of a bool. *)
val solution_le_witness :
  Solution.t -> Solution.t -> procs:string list -> string option

(** Names of the reachable procedures of a context, PCG order. *)
val reachable_procs : Context.t -> string list

(** The subset of {!reachable_procs} neither inside nor downstream of a
    PCG cycle — the complement of the forward cone seeded by the
    back-edge callees.  The hierarchy comparisons into FS ([poly ⊑ fs],
    [fi ⊑ fs]) are checked exactly on these procedures; on an acyclic
    program this is every reachable procedure. *)
val cycle_free_procs : Context.t -> string list

(** [check_solution_sound prog sol] executes [prog] (if it terminates
    within fuel and without runtime errors) and verifies that every formal
    and global the solution claims constant at a procedure entry has
    exactly that value at {e every} dynamic entry of the procedure. *)
val check_solution_sound :
  ?fuel:int -> Ast.program -> Solution.t -> (unit, string) result

(** [check_returns_sound prog rc] verifies the return-constants exit
    summaries against the interpreter's procedure-exit trace: every formal
    or global claimed constant at exit has exactly that value at {e every}
    dynamic exit of the procedure. *)
val check_returns_sound :
  ?fuel:int -> Ast.program -> Return_consts.t -> (unit, string) result

(** Run every oracle check on one {!Sema.check}-clean program.  [jobs] is
    the parallel arm of the determinism check (default
    {!Fsicp_par.Par.default_jobs}, at least 2). *)
val check_program :
  ?fuel:int -> ?jobs:int -> Ast.program -> (unit, failure) result

(** The generated program the fuzz harness checks for a seed
    ({!Fsicp_workloads.Generator.small_profile}). *)
val program_of_seed : int -> Ast.program

(** {!check_program} on {!program_of_seed}. *)
val check_seed : ?fuel:int -> ?jobs:int -> int -> (unit, failure) result

(** Translation validation of the four pipeline transformations
    ({!Fsicp_verify.Verify.verify_program} under the FS solution): fails
    with check ["vc:<transform>"] iff some VC is [Refuted] — i.e. the
    symbolic product evaluator found a divergence candidate {e and} the
    concrete interpreter confirmed a print-sequence counterexample.
    [Inconclusive] VCs (fuel, aliasing, residual obligations) are not
    failures.  [fuel] bounds the {e symbolic} engine, not the interpreter
    (default 20_000 steps per VC). *)
val check_transform_vc : ?fuel:int -> Ast.program -> (unit, failure) result

(** Canonical full print of a solution — entries, call records, SCC
    results, [scc_runs] — keyed by names, never by context-minted ids, so
    digests of independent solves of the same program are comparable.
    Byte-equality of digests is the oracle's definition of "identical
    solutions". *)
val solution_digest : Solution.t -> string

(** One random procedure edit of [prog]: mostly shape-preserving literal
    tweaks / appended statements / no-ops, with an occasional appended
    call site that changes the program shape.  The result always yields a
    [Sema]-clean program when substituted into [prog]. *)
val random_edit : Random.State.t -> Ast.program -> Ast.proc

(** [check_edit_sequence ?jobs ?edits seed] drives the same random edit
    sequence (default 5 edits) through two live incremental engines
    ([jobs = 1] and [jobs = N, N ≥ 2]) and, after every edit, checks both
    engines' solutions are byte-identical ({!solution_digest}) to a
    from-scratch solve of the current program, and that both engines chose
    the same incremental-vs-rebuild route.  After the last edit the
    beyond-the-paper methods are checked on the final program too: cc and
    vc must be interpreter-sound and satisfy [fs ⊑ cc] / [fs ⊑ vc]. *)
val check_edit_sequence :
  ?jobs:int -> ?edits:int -> int -> (unit, failure) result

(** [write_reproducer ~dir ~name ~failure ?seed prog] pretty-prints [prog]
    into [dir/name.mf] with a comment header recording the failed check
    (creating [dir] if needed) and returns the path.  The file is valid
    MiniFort: the corpus-replay test re-parses and re-checks it. *)
val write_reproducer :
  dir:string ->
  name:string ->
  failure:failure ->
  ?seed:int ->
  Ast.program ->
  string
