(** Delta-debugging shrinker for oracle counterexamples.

    Given a failing program and a [still_fails] predicate (typically "the
    same oracle check still trips"), {!shrink} greedily reduces the program
    while keeping it {!Fsicp_lang.Sema.check}-clean and still-failing:

    - chunked ddmin over the pre-order statement sequence (dropping a
      statement drops its whole subtree);
    - flattening compound statements into one of their branches;
    - dropping whole procedures (once their call sites are gone);
    - dropping globals and block-data initialisers;
    - simplifying expressions (operand extraction, collapse to [0]/[1]).

    Passes run to a fixpoint, bounded by [max_checks] candidate
    evaluations.  The result is 1-minimal with respect to the passes that
    ran within budget, not globally minimal. *)

open Fsicp_lang

(** Number of statements in the program, counting nested ones. *)
val stmt_count : Ast.program -> int

(** [shrink ~still_fails prog] — [prog] must satisfy [still_fails].
    Candidates failing {!Sema.check} are discarded without consulting
    [still_fails].  [max_checks] bounds total candidate evaluations
    (default [5000]). *)
val shrink :
  ?max_checks:int ->
  still_fails:(Ast.program -> bool) ->
  Ast.program ->
  Ast.program
