(** Regenerate the golden equivalence fixtures under [test/golden/].

    For every MiniFort program in [testdata/] and every constant-propagation
    method, dump the rendered {!Fsicp_core.Solution.pp} output to
    [test/golden/<program>.<method>.expected].  Additionally dump the
    logical-mode Chrome trace of a jobs=1 {!Fsicp_core.Driver.run} to
    [test/golden/<program>.trace.expected], pinning the byte-deterministic
    trace format, and the concatenated SMT-LIB2 renderings of every
    translation-validation VC (all four transformations, symbolic backend,
    FS solution) to [test/golden/<program>.smt2.expected].  The fixtures pin
    the user-visible analysis results; [test/test_golden.ml] and
    [test/test_verify.ml] assert the live pipeline still reproduces them
    byte for byte.

    Usage: [dune exec tools/golden_gen/golden_gen.exe -- TESTDATA_DIR OUT_DIR] *)

open Fsicp_lang
open Fsicp_core
module Trace = Fsicp_trace.Trace
module Verify = Fsicp_verify.Verify

let read_program path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let prog = Parser.program_of_string src in
  (match Sema.check prog with
  | Ok () -> ()
  | Error es ->
      Fmt.epr "%s: semantic errors:@\n%s@." path (Sema.errors_to_string es);
      exit 2);
  prog

let methods : (string * (Context.t -> Solution.t)) list =
  [
    ("fi", Fi_icp.solve);
    ("fs", fun ctx -> Fs_icp.solve ctx);
    ("ref", Reference.solve);
    ("cc", fun ctx -> Cc_icp.solve ctx);
    ("vc", fun ctx -> Vc_icp.solve ctx);
    ("literal", fun ctx -> Jump_functions.solve ctx Jump_functions.Literal);
    ("intra", fun ctx -> Jump_functions.solve ctx Jump_functions.Intra);
    ("pass", fun ctx -> Jump_functions.solve ctx Jump_functions.Pass_through);
    ("poly", fun ctx -> Jump_functions.solve ctx Jump_functions.Polynomial);
  ]

let () =
  let testdata, out =
    match Sys.argv with
    | [| _; t; o |] -> (t, o)
    | _ -> ("testdata", "test/golden")
  in
  if not (Sys.file_exists out) then Sys.mkdir out 0o755;
  Sys.readdir testdata |> Array.to_list |> List.sort String.compare
  |> List.iter (fun file ->
         if Filename.check_suffix file ".mf" then begin
           let base = Filename.chop_suffix file ".mf" in
           let prog = read_program (Filename.concat testdata file) in
           List.iter
             (fun (mname, solve) ->
               let ctx = Context.create prog in
               let rendered = Fmt.str "%a" Solution.pp (solve ctx) in
               let path =
                 Filename.concat out
                   (Printf.sprintf "%s.%s.expected" base mname)
               in
               let oc = open_out_bin path in
               output_string oc rendered;
               close_out oc;
               Fmt.pr "wrote %s (%d bytes)@." path (String.length rendered))
             methods;
           (* Logical-mode trace of the full pipeline at jobs=1: the event
              order, epochs, args and counter values are all deterministic,
              so the whole JSON document is a byte-stable fixture. *)
           Trace.reset ();
           Trace.set_enabled true;
           ignore (Driver.run ~jobs:1 prog);
           Trace.set_enabled false;
           let rendered = Trace.to_chrome_json ~mode:Trace.Logical () in
           let path =
             Filename.concat out (Printf.sprintf "%s.trace.expected" base)
           in
           let oc = open_out_bin path in
           output_string oc rendered;
           close_out oc;
           Fmt.pr "wrote %s (%d bytes)@." path (String.length rendered);
           (* Translation-validation VCs under the symbolic backend: the
              rendered SMT-LIB2 text (declarations, assertions, verdict
              headers) is deterministic for a given program, so the whole
              concatenated document is a byte-stable fixture too. *)
           let ctx = Context.create prog in
           let fs = Fs_icp.solve ctx in
           let reports = Verify.verify_program ctx ~solution:fs in
           let rendered =
             reports
             |> List.concat_map (fun r -> r.Verify.r_vcs)
             |> List.map Verify.render
             |> String.concat "\n"
           in
           let path =
             Filename.concat out (Printf.sprintf "%s.smt2.expected" base)
           in
           let oc = open_out_bin path in
           output_string oc rendered;
           close_out oc;
           Fmt.pr "wrote %s (%d bytes)@." path (String.length rendered)
         end)
