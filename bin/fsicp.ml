(** [fsicp] — command-line driver for the flow-sensitive interprocedural
    constant propagation library.

    {v
    fsicp analyze FILE [--method M] [--no-floats] [--jobs N]
                                                     constants found by M
    fsicp pipeline FILE [--jobs N]                   full Figure-2 pipeline
    fsicp run FILE                                   interpret the program
    fsicp dump FILE --what ast|cfg|ssa|pcg|modref    intermediate forms
    fsicp fold FILE [--method M]                     folded/optimised output
    fsicp tables [--table N] [--quick]               paper tables 1..5 etc.
    fsicp generate --seed N [--procs P] [--back B]   synthetic program
    fsicp fuzz [--seeds N] [--start S] [--no-shrink] differential oracle
    fsicp fuzz --edits K [--seeds N]                 edit-sequence oracle
    fsicp fuzz --vc [--seeds N]                      also check transform VCs
    fsicp verify FILE [--solver z3|symbolic]         translation validation
    fsicp trace FILE [--trace-out F] [--wall]        Chrome trace_event JSON
    fsicp serve --socket PATH [--program FILE]       analysis daemon
    fsicp client --socket PATH [REQUEST...]          send daemon requests
    v} *)

open Cmdliner
open Fsicp_lang
open Fsicp_core
open Fsicp_workloads
open Fsicp_report

let read_program path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  match Parser.program_of_string src with
  | prog -> (
      match Sema.check prog with
      | Ok () -> prog
      | Error es ->
          Fmt.epr "%s: semantic errors:@\n%s@." path (Sema.errors_to_string es);
          exit 2)
  | exception Parser.Error (msg, pos) ->
      Fmt.epr "%s:%a: syntax error: %s@." path Ast.pp_pos pos msg;
      exit 2
  | exception Lexer.Error (msg, pos) ->
      Fmt.epr "%s:%a: lexical error: %s@." path Ast.pp_pos pos msg;
      exit 2

type meth = FS | FI | Ref | CC | VC | JF of Jump_functions.variant

let meth_conv =
  let parse = function
    | "fs" | "flow-sensitive" -> Ok FS
    | "fi" | "flow-insensitive" -> Ok FI
    | "ref" | "iterative" -> Ok Ref
    | "cc" | "copy-constant" -> Ok CC
    | "vc" | "value-context" -> Ok VC
    | "literal" -> Ok (JF Jump_functions.Literal)
    | "intra" -> Ok (JF Jump_functions.Intra)
    | "pass" | "pass-through" -> Ok (JF Jump_functions.Pass_through)
    | "poly" | "polynomial" -> Ok (JF Jump_functions.Polynomial)
    | s -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  Arg.conv (parse, fun ppf m ->
      Fmt.string ppf
        (match m with
        | FS -> "fs"
        | FI -> "fi"
        | Ref -> "ref"
        | CC -> "cc"
        | VC -> "vc"
        | JF v -> Jump_functions.variant_name v))

let solve_with ?jobs meth ctx =
  match meth with
  | FS -> Fs_icp.solve ?jobs ctx
  | FI -> Fi_icp.solve ctx
  | Ref -> Reference.solve ctx
  | CC -> Cc_icp.solve ?jobs ctx
  | VC -> Vc_icp.solve ?jobs ctx
  | JF v -> Jump_functions.solve ctx v

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniFort source file")

let meth_arg =
  Arg.(value & opt meth_conv FS & info [ "method"; "m" ] ~docv:"METHOD"
         ~doc:"fs | fi | ref | cc | vc | literal | intra | pass | poly")

let no_floats_arg =
  Arg.(value & flag & info [ "no-floats" ]
         ~doc:"disable interprocedural propagation of floating-point constants")

(* Strict job counts: --jobs and FSICP_JOBS share Par.parse_jobs, so zero,
   negatives and garbage are loud errors rather than silent clamps. *)
let jobs_conv =
  let parse s =
    match Fsicp_par.Par.parse_jobs s with
    | Ok j -> Ok j
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Fmt.int)

let jobs_arg =
  Arg.(value & opt (some jobs_conv) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"worker domains for parallel phases (default: FSICP_JOBS, \
               else all cores); results are identical for every N")

let resolve_jobs = function
  | Some j -> j
  | None -> (
      (* Par.default_jobs raises on a malformed FSICP_JOBS value; turn that
         into a clean CLI error rather than an uncaught-exception report. *)
      try Fsicp_par.Par.default_jobs ()
      with Invalid_argument msg ->
        Fmt.epr "fsicp: %s@." msg;
        exit 2)

(* -- analyze --------------------------------------------------------- *)

let analyze file meth no_floats jobs =
  let jobs = resolve_jobs jobs in
  let prog = read_program file in
  let ctx = Context.create ~floats:(not no_floats) ~jobs prog in
  let sol = solve_with ~jobs meth ctx in
  Fmt.pr "%a" Solution.pp sol;
  let cands =
    Metrics.candidates ctx ~fi:(Fi_icp.solve ctx)
      ~fs:(Fs_icp.solve ~jobs ctx) ~name:file
  in
  Fmt.pr "call sites: %d args, %d literal, %d FI-constant, %d FS-constant@."
    cands.Metrics.cd_args cands.Metrics.cd_imm cands.Metrics.cd_fi
    cands.Metrics.cd_fs

let analyze_cmd =
  Cmd.v (Cmd.info "analyze" ~doc:"report interprocedural constants")
    Term.(const analyze $ file_arg $ meth_arg $ no_floats_arg $ jobs_arg)

(* -- pipeline --------------------------------------------------------- *)

let pipeline file jobs extended =
  let prog = read_program file in
  let d = Driver.run ~jobs:(resolve_jobs jobs) ~extended prog in
  Fmt.pr "%a" Driver.pp d;
  let counts name (sol : Solution.t) =
    Fmt.pr "%s: %d constant formals, %d constant globals@." name
      (List.length (Solution.constant_formals sol))
      (List.length (Solution.constant_globals sol))
  in
  counts "FI" d.Driver.fi;
  counts "FS" d.Driver.fs;
  Option.iter (counts "CC") d.Driver.cc;
  Option.iter (counts "VC") d.Driver.vc

let pipeline_cmd =
  Cmd.v (Cmd.info "pipeline" ~doc:"run the full Figure-2 pipeline")
    Term.(
      const pipeline $ file_arg $ jobs_arg
      $ Arg.(value & flag & info [ "extended" ]
               ~doc:"also run the beyond-the-paper copy-constant and \
                     value-context methods (phases 5c/5d)"))

(* -- run --------------------------------------------------------------- *)

let run_prog file =
  let prog = read_program file in
  match Fsicp_interp.Interp.run prog with
  | r ->
      List.iter (fun v -> Fmt.pr "%a@." Value.pp v) r.Fsicp_interp.Interp.prints
  | exception Fsicp_interp.Interp.Runtime_error msg ->
      Fmt.epr "runtime error: %s@." msg;
      exit 1
  | exception Fsicp_interp.Interp.Out_of_fuel ->
      Fmt.epr "out of fuel (program too long-running)@.";
      exit 1

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"interpret a MiniFort program")
    Term.(const run_prog $ file_arg)

(* -- dump --------------------------------------------------------------- *)

let dump file what =
  let prog = read_program file in
  match what with
  | "ast" -> Fmt.pr "%a" Pretty.pp_program prog
  | "cfg" ->
      List.iter
        (fun p -> Fmt.pr "%a@\n" Fsicp_cfg.Ir.pp_proc p)
        (Fsicp_cfg.Lower.lower_program prog)
  | "ssa" ->
      let ctx = Context.create prog in
      Array.iter
        (fun pid ->
          Fmt.pr "%a@\n" Fsicp_ssa.Ssa.pp_proc (Context.ssa_at ctx pid))
        ctx.Context.pcg.Fsicp_callgraph.Callgraph.nodes
  | "pcg" ->
      let pcg = Fsicp_callgraph.Callgraph.build prog in
      Fmt.pr "%a" Fsicp_callgraph.Callgraph.pp pcg
  | "modref" ->
      let ctx = Context.create prog in
      Fmt.pr "%a" Fsicp_ipa.Modref.pp ctx.Context.modref
  | "alias" ->
      let ctx = Context.create prog in
      Fmt.pr "%a" Fsicp_ipa.Alias.pp ctx.Context.aliases
  | w ->
      Fmt.epr "unknown --what %S (ast|cfg|ssa|pcg|modref|alias)@." w;
      exit 2

let dump_cmd =
  Cmd.v (Cmd.info "dump" ~doc:"print intermediate representations")
    Term.(
      const dump $ file_arg
      $ Arg.(value & opt string "ast" & info [ "what"; "w" ] ~docv:"WHAT"))

(* -- fold --------------------------------------------------------------- *)

let fold file meth no_floats jobs =
  let jobs = resolve_jobs jobs in
  let prog = read_program file in
  let ctx = Context.create ~floats:(not no_floats) ~jobs prog in
  let sol = solve_with ~jobs meth ctx in
  let folded = Fold.fold_program ctx sol in
  Fmt.pr "%a" Pretty.pp_program folded

let fold_cmd =
  Cmd.v
    (Cmd.info "fold" ~doc:"constant-fold the program using ICP results")
    Term.(const fold $ file_arg $ meth_arg $ no_floats_arg $ jobs_arg)

(* -- inline / clone ------------------------------------------------------ *)

let inline file max_body =
  let prog = read_program file in
  let ctx = Context.create prog in
  let prog', n = Inline.inline_program ctx ~max_body () in
  Fmt.epr "inlined %d call(s)@." n;
  Fmt.pr "%a" Pretty.pp_program prog'

let inline_cmd =
  Cmd.v
    (Cmd.info "inline" ~doc:"inline small non-recursive procedures")
    Term.(
      const inline $ file_arg
      $ Arg.(value & opt int 12 & info [ "max-body" ] ~docv:"N"
               ~doc:"maximum callee size in statements"))

let clone file =
  let prog = read_program file in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  let prog', n = Clone.clone_by_constants ctx ~fs () in
  Fmt.epr "created %d clone(s)@." n;
  Fmt.pr "%a" Pretty.pp_program prog'

let clone_cmd =
  Cmd.v
    (Cmd.info "clone" ~doc:"clone procedures per constant argument signature")
    Term.(const clone $ file_arg)

(* -- tables ------------------------------------------------------------- *)

let tables table =
  let all = table = 0 in
  if all || table = 1 then begin
    let t, _ =
      Fsicp_harness.Harness.candidates_table
        ~title:"Table 1: interprocedural call site constant candidates, measured (paper)"
        Spec.suite
    in
    Report.print t;
    print_newline ()
  end;
  if all || table = 2 then begin
    let _, runs =
      Fsicp_harness.Harness.candidates_table ~title:"" Spec.suite
    in
    Report.print
      (Fsicp_harness.Harness.propagated_table
         ~title:"Table 2: interprocedural propagated constants, measured (paper)"
         runs);
    print_newline ()
  end;
  if all || table = 3 then begin
    let t, _ =
      Fsicp_harness.Harness.candidates_table ~floats:false
        ~title:"Table 3: call site candidates, first-release subset, no floats"
        Spec.first_release
    in
    Report.print t;
    print_newline ()
  end;
  if all || table = 4 then begin
    let _, runs =
      Fsicp_harness.Harness.candidates_table ~floats:false ~title:""
        Spec.first_release
    in
    Report.print
      (Fsicp_harness.Harness.propagated_table
         ~title:"Table 4: propagated constants, first-release subset, no floats"
         runs);
    print_newline ()
  end;
  if all || table = 5 then begin
    let _, runs =
      Fsicp_harness.Harness.candidates_table ~floats:false ~title:""
        Spec.first_release
    in
    Report.print
      (Fsicp_harness.Harness.substitutions_table
         ~title:"Table 5: intraprocedural substitutions, measured (paper)"
         runs);
    print_newline ()
  end;
  if all || table = 6 then begin
    Report.print (Fsicp_harness.Harness.extended_gains_table ());
    print_newline ()
  end

let tables_cmd =
  Cmd.v
    (Cmd.info "tables" ~doc:"print the paper's tables (measured vs paper)")
    Term.(
      const tables
      $ Arg.(value & opt int 0 & info [ "table"; "t" ] ~docv:"N"
               ~doc:"1..5, 6 = beyond-the-paper gains; 0 = all"))

(* -- generate ------------------------------------------------------------ *)

let generate seed procs back =
  let profile =
    {
      (Generator.small_profile seed) with
      Generator.g_procs = procs;
      g_back_edge_prob = back;
    }
  in
  Fmt.pr "%a" Pretty.pp_program (Generator.generate profile)

let generate_cmd =
  Cmd.v (Cmd.info "generate" ~doc:"emit a synthetic MiniFort program")
    Term.(
      const generate
      $ Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N")
      $ Arg.(value & opt int 8 & info [ "procs" ] ~docv:"P")
      $ Arg.(value & opt float 0.0 & info [ "back" ] ~docv:"B"))

(* -- gen ----------------------------------------------------------------- *)

(* Strict scale-corpus arguments: like --jobs, the size and seed are parsed
   from strings so garbage is a clean [fsicp: ...] + exit 2, never an
   uncaught exception or a silent clamp. *)
let gen family procs seed out stats_only solve_check jobs =
  let fail msg =
    Fmt.epr "fsicp: %s@." msg;
    exit 2
  in
  let unwrap = function Ok v -> v | Error msg -> fail msg in
  let family = unwrap (Scale.family_of_string family) in
  let procs = unwrap (Scale.parse_procs procs) in
  let seed = unwrap (Scale.parse_seed seed) in
  let spec = { Scale.sp_family = family; sp_procs = procs; sp_seed = seed } in
  let t0 = Unix.gettimeofday () in
  let prog = Scale.generate spec in
  let gen_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let print_stats () =
    List.iter (fun (k, v) -> Fmt.pr "%-12s %d@." k v) (Scale.stats prog);
    Fmt.pr "%-12s %s@." "digest" (Scale.digest prog);
    Fmt.epr "gen: built %s/%d procedures in %.1f ms@."
      (Scale.family_to_string family) procs gen_ms
  in
  (match out with
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        fail (Printf.sprintf "output path %s exists and is not a directory" dir);
      let path =
        Filename.concat dir
          (Printf.sprintf "%s-%d-s%d.mf" (Scale.family_to_string family)
             procs seed)
      in
      let oc = open_out_bin path in
      output_string oc (Pretty.program_to_string prog);
      close_out oc;
      Fmt.pr "%s@." path
  | None -> if not solve_check then print_stats ());
  if stats_only && out <> None then print_stats ();
  if solve_check then begin
    let jobs = resolve_jobs jobs in
    (* Four independent solves of the same corpus — eager and streaming
       contexts, sequential and parallel — must agree to the byte on the
       canonical solution digest.  [top_heap_words] is process-monotonic,
       so the streaming runs go first to leave their (smaller) footprints
       observable. *)
    let solve_digest ~label ~jobs mk_ctx =
      Gc.compact ();
      let t = Unix.gettimeofday () in
      let ctx = mk_ctx () in
      let sol = Fs_icp.solve ~jobs ctx in
      let ms = (Unix.gettimeofday () -. t) *. 1000. in
      Fmt.pr "solve %s jobs=%d: %.1f ms (top_heap=%dw)@." label jobs ms
        (Gc.stat ()).Gc.top_heap_words;
      (label, jobs, Solution.digest sol)
    in
    let s1 =
      solve_digest ~label:"streaming" ~jobs:1 (fun () ->
          Context.create_streaming prog)
    in
    let sj =
      solve_digest ~label:"streaming" ~jobs (fun () ->
          Context.create_streaming prog)
    in
    let e1 =
      solve_digest ~label:"eager" ~jobs:1 (fun () -> Context.create ~jobs:1 prog)
    in
    let ej =
      solve_digest ~label:"eager" ~jobs (fun () -> Context.create ~jobs prog)
    in
    let runs = [ s1; sj; e1; ej ] in
    let _, _, ref_digest = e1 in
    let bad =
      List.filter (fun (_, _, d) -> not (String.equal d ref_digest)) runs
    in
    if bad = [] then Fmt.pr "digests identical@."
    else begin
      List.iter
        (fun (label, j, _) ->
          Fmt.epr "fsicp: digest mismatch (%s jobs=%d vs eager jobs=1)@."
            label j)
        bad;
      exit 1
    end
  end

let gen_cmd =
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "build a size-parametric synthetic corpus (chain | fanout | common \
          | recursion | mixed) directly as an AST; write it, print its \
          shape statistics, or solve it at two job counts and compare \
          solution digests")
    Term.(
      const gen
      $ Arg.(required
             & pos 0 (some string) None
             & info [] ~docv:"FAMILY"
                 ~doc:"chain | fanout | common | recursion | mixed")
      $ Arg.(value & opt string "10000" & info [ "procs" ] ~docv:"N"
               ~doc:"total procedures including main (2..2000000)")
      $ Arg.(value & opt string "1" & info [ "seed" ] ~docv:"S")
      $ Arg.(value & opt (some string) None
             & info [ "o"; "out" ] ~docv:"DIR"
                 ~doc:"write the corpus as MiniFort text under $(docv)")
      $ Arg.(value & flag
             & info [ "stats-only" ]
                 ~doc:"print shape statistics and the corpus digest even \
                       when also writing with $(b,-o)")
      $ Arg.(value & flag
             & info [ "solve-check" ]
                 ~doc:"solve the corpus flow-sensitively with eager and \
                       streaming contexts at jobs 1 and at --jobs and \
                       require byte-identical solution digests (exit 1 on \
                       mismatch)")
      $ jobs_arg)

(* -- trace --------------------------------------------------------------- *)

module Trace = Fsicp_trace.Trace

let trace_pipeline file jobs out wall =
  let jobs = resolve_jobs jobs in
  let prog = read_program file in
  Trace.reset ();
  Trace.set_enabled true;
  let d = Driver.run ~jobs prog in
  Trace.set_enabled false;
  Trace.write_chrome_json ~mode:(if wall then Trace.Wall else Trace.Logical) out;
  (* Counters to stdout (the deterministic surface); the timing summary to
     stderr, where wall-clock noise belongs. *)
  print_string (Trace.counters_table ~all:wall ());
  Fmt.epr "%a" Driver.pp d;
  Fmt.epr "trace: %s written to %s (open in Perfetto / chrome://tracing)@."
    (if wall then "wall-clock profile" else "canonical trace")
    out

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "run the Figure-2 pipeline with structured tracing and write \
          Chrome trace_event JSON plus a counters table; the default \
          canonical trace is byte-deterministic at a fixed --jobs")
    Term.(
      const trace_pipeline $ file_arg $ jobs_arg
      $ Arg.(value & opt string "trace.json"
             & info [ "trace-out"; "o" ] ~docv:"FILE"
                 ~doc:"output path for the trace JSON")
      $ Arg.(value & flag & info [ "wall" ]
               ~doc:
                 "emit real timestamps on per-domain tracks (a profile, \
                  not deterministic) instead of the canonical logical \
                  trace"))

(* -- verify -------------------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let verify file meth no_floats jobs solver dump_vc transform fuel =
  let module V = Fsicp_verify.Verify in
  let jobs = resolve_jobs jobs in
  let prog = read_program file in
  let ctx = Context.create ~floats:(not no_floats) ~jobs prog in
  let sol = solve_with ~jobs meth ctx in
  let backend =
    match solver with
    | "symbolic" -> V.Symbolic
    | s -> V.Z3 s (* "z3", or any solver command taking an .smt2 path *)
  in
  let transforms =
    match transform with
    | None -> V.transform_names
    | Some t when List.mem t V.transform_names -> [ t ]
    | Some t ->
        Fmt.epr "fsicp verify: unknown transform %S (expected one of %s)@." t
          (String.concat ", " V.transform_names);
        exit 2
  in
  let proved = ref 0 and refuted = ref 0 and inconclusive = ref 0 in
  List.iter
    (fun tr ->
      let trans = V.apply_transform ctx ~solution:sol tr in
      let vcs = V.vcs ~fuel ~backend ctx ~solution:sol ~transform:tr ~trans in
      List.iter
        (fun vc ->
          (match vc.V.vc_verdict with
          | V.Proved -> incr proved
          | V.Refuted _ -> incr refuted
          | V.Inconclusive _ -> incr inconclusive);
          Fmt.pr "%a@." V.pp_vc vc;
          (match vc.V.vc_verdict with
          | V.Proved -> ()
          | v -> Fmt.pr "        %a@." V.pp_verdict v);
          Option.iter
            (fun dir ->
              mkdir_p dir;
              let path =
                Filename.concat dir
                  (Printf.sprintf "%s.%s.smt2" tr vc.V.vc_proc)
              in
              let oc = open_out path in
              output_string oc (V.render vc);
              close_out oc)
            dump_vc)
        vcs)
    transforms;
  Fmt.pr "verify: %d proved, %d inconclusive, %d refuted@." !proved
    !inconclusive !refuted;
  if !refuted > 0 then exit 1

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "translation validation: emit and discharge a verification \
          condition for every procedure the transformation pipeline \
          (insert/fold/inline/clone) modified; exits nonzero iff some VC is \
          refuted with an interpreter-confirmed counterexample")
    Term.(
      const verify $ file_arg $ meth_arg $ no_floats_arg $ jobs_arg
      $ Arg.(value & opt string "symbolic"
             & info [ "solver" ] ~docv:"S"
                 ~doc:"symbolic (built-in, no external dependency) or z3 \
                       (or any solver command accepting an .smt2 file); \
                       external answers are trusted only in the exact \
                       integer encoding")
      $ Arg.(value & opt (some string) None
             & info [ "dump-vc" ] ~docv:"DIR"
                 ~doc:"write each VC as SMT-LIB2 to \
                       $(docv)/TRANSFORM.PROC.smt2")
      $ Arg.(value & opt (some string) None
             & info [ "transform" ] ~docv:"T"
                 ~doc:"verify only this transformation \
                       (insert|fold|inline|clone)")
      $ Arg.(value & opt int 20_000
             & info [ "fuel" ] ~docv:"F"
                 ~doc:"symbolic step budget per VC"))

(* -- fuzz ---------------------------------------------------------------- *)

let fuzz seeds start fuel jobs out no_shrink trace_out edits vc =
  Option.iter
    (fun _ ->
      Trace.reset ();
      Trace.set_enabled true)
    trace_out;
  (* Per-seed check spans and outcome counters; wall mode, since a fuzzing
     campaign is a profile of real work, not a canonical artifact. *)
  let flush_trace () =
    Option.iter
      (fun path ->
        Trace.set_enabled false;
        Trace.write_chrome_json ~mode:Trace.Wall path;
        Fmt.epr "fuzz: trace written to %s@." path)
      trace_out
  in
  let module O = Fsicp_oracle.Oracle in
  let module S = Fsicp_oracle.Shrink in
  let jobs = resolve_jobs jobs in
  let last = start + seeds - 1 in
  let failures = ref 0 in
  for seed = start to last do
    if (seed - start) mod 50 = 0 then
      Fmt.epr "fuzz: seed %d of %d..%d (%d failures so far)@." seed start last
        !failures;
    if edits > 0 then begin
      (* Edit-sequence mode: drive the incremental engines instead of the
         one-shot differential checks.  Sequences are not shrinkable — the
         failing state is the path, not the program — so just report. *)
      match O.check_edit_sequence ~jobs ~edits seed with
      | Ok () -> ()
      | Error failure ->
          incr failures;
          Fmt.epr "fuzz: edit seed %d FAILED — %a@." seed O.pp_failure failure
    end
    else
    let check_full p =
      match O.check_program ~fuel ~jobs p with
      | Error _ as e -> e
      | Ok () -> if vc then O.check_transform_vc p else Ok ()
    in
    let seed_result =
      match O.check_seed ~fuel ~jobs seed with
      | Error _ as e -> e
      | Ok () ->
          if vc then O.check_transform_vc (O.program_of_seed seed) else Ok ()
    in
    match seed_result with
    | Ok () -> ()
    | Error failure ->
        incr failures;
        Fmt.epr "fuzz: seed %d FAILED — %a@." seed O.pp_failure failure;
        let prog = O.program_of_seed seed in
        let prog, failure =
          if no_shrink then (prog, failure)
          else begin
            (* Shrink against the *same* check so the reproducer does not
               drift onto an unrelated bug mid-reduction. *)
            let still_fails p =
              match check_full p with
              | Error f -> String.equal f.O.f_check failure.O.f_check
              | Ok () -> false
            in
            let small = S.shrink ~still_fails prog in
            Fmt.epr "fuzz: shrunk seed %d from %d to %d statements@." seed
              (S.stmt_count prog) (S.stmt_count small);
            match check_full small with
            | Error f -> (small, f)
            | Ok () -> (prog, failure)
          end
        in
        let path =
          O.write_reproducer ~dir:out
            ~name:(Printf.sprintf "seed-%d" seed)
            ~failure ~seed prog
        in
        Fmt.epr "fuzz: reproducer written to %s@." path
  done;
  flush_trace ();
  if !failures = 0 then Fmt.pr "fuzz: %d seeds OK@." seeds
  else begin
    Fmt.pr "fuzz: %d of %d seeds failed@." !failures seeds;
    exit 1
  end

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "generate programs and run the differential soundness oracle on \
          each; on failure, shrink to a minimal reproducer")
    Term.(
      const fuzz
      $ Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N"
               ~doc:"number of seeds to check")
      $ Arg.(value & opt int 0 & info [ "start" ] ~docv:"S" ~doc:"first seed")
      $ Arg.(value
             & opt int Fsicp_oracle.Oracle.default_fuel
             & info [ "fuel" ] ~docv:"F" ~doc:"interpreter step budget")
      $ jobs_arg
      $ Arg.(value
             & opt string "testdata/regressions"
             & info [ "out" ] ~docv:"DIR" ~doc:"reproducer output directory")
      $ Arg.(value & flag & info [ "no-shrink" ]
               ~doc:"write the unshrunk failing program")
      $ Arg.(value & opt (some string) None
             & info [ "trace" ] ~docv:"FILE"
                 ~doc:"record per-seed oracle spans and counters; write \
                       wall-clock Chrome trace JSON to $(docv)")
      $ Arg.(value & opt int 0
             & info [ "edits" ] ~docv:"K"
                 ~doc:"when positive, run the edit-sequence oracle instead: \
                       per seed, apply $(docv) random procedure edits to \
                       live incremental engines at jobs 1 and N and check \
                       every solution is byte-identical to a from-scratch \
                       solve")
      $ Arg.(value & flag
             & info [ "vc" ]
                 ~doc:"additionally run translation validation on every \
                       seed (and while shrinking): any transformation VC \
                       refuted with an interpreter-confirmed \
                       counterexample is a failure (check vc:TRANSFORM)"))

(* -- serve / client ------------------------------------------------------ *)

let version = "0.9.0"

let socket_arg =
  Arg.(required
       & opt (some string) None
       & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let serve socket jobs program =
  (* Resolve eagerly so a malformed FSICP_JOBS kills the daemon at startup,
     not a later request. *)
  let jobs = resolve_jobs jobs in
  let preload = Option.map read_program program in
  match
    Fsicp_serve.Serve.run ~jobs ?preload
      ~on_ready:(fun () -> Fmt.epr "fsicp serve: listening on %s@." socket)
      ~version ~socket ()
  with
  | () -> ()
  | exception Failure msg ->
      Fmt.epr "fsicp serve: %s@." msg;
      exit 1
  | exception Unix.Unix_error (e, fn, arg) ->
      Fmt.epr "fsicp serve: %s: %s(%s)@." (Unix.error_message e) fn arg;
      exit 1

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "run the analysis daemon: accept length-prefixed JSON request \
          frames on a Unix-domain socket against one long-lived \
          incremental engine (load / query-entry / query-call-site / \
          edit-proc / solve / stats / digest / shutdown)")
    Term.(
      const serve $ socket_arg $ jobs_arg
      $ Arg.(value & opt (some file) None
             & info [ "program"; "p" ] ~docv:"FILE"
                 ~doc:"MiniFort source to load and analyse before \
                       accepting connections"))

let client socket batch extract reqs =
  let module Serve = Fsicp_serve.Serve in
  let module Json = Fsicp_serve.Json in
  let raw =
    match reqs with
    | _ :: _ -> reqs
    | [] ->
        (* No positional requests: read one JSON document per stdin line. *)
        let rec loop acc =
          match input_line stdin with
          | line ->
              loop (if String.trim line = "" then acc else line :: acc)
          | exception End_of_file -> List.rev acc
        in
        loop []
  in
  let docs =
    List.map
      (fun s ->
        match Json.of_string s with
        | Ok d -> d
        | Error m ->
            Fmt.epr "fsicp client: invalid request JSON: %s@." m;
            exit 2)
      raw
  in
  if docs = [] then begin
    Fmt.epr "fsicp client: no requests (pass JSON arguments or stdin lines)@.";
    exit 2
  end;
  let fd =
    match Serve.connect ~socket with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) ->
        Fmt.epr "fsicp client: cannot connect to %s: %s@." socket
          (Unix.error_message e);
        exit 1
  in
  let failed = ref false in
  let print_response r =
    (match Json.member "ok" r with
    | Some (Json.Bool false) -> failed := true
    | _ -> ());
    match extract with
    | None -> print_endline (Json.to_string r)
    | Some field -> (
        match Json.member field r with
        | Some (Json.Str s) ->
            (* Raw string fields (digests, dumps) print verbatim so shell
               pipelines can diff them without a JSON decoder. *)
            print_string s;
            if s = "" || s.[String.length s - 1] <> '\n' then print_newline ()
        | Some v -> print_endline (Json.to_string v)
        | None ->
            failed := true;
            Fmt.epr "fsicp client: response has no field %S@." field)
  in
  (Fun.protect
     ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
   match
     if batch then
       match Serve.roundtrip fd (Json.Arr docs) with
       | Json.Arr rs -> List.iter print_response rs
       | r -> print_response r
     else List.iter (fun d -> print_response (Serve.roundtrip fd d)) docs
   with
   | () -> ()
   | exception Failure msg ->
       Fmt.epr "fsicp client: %s@." msg;
       exit 1);
  if !failed then exit 1

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "send JSON requests (positional arguments, or one per stdin line) \
          to a running fsicp serve daemon and print each response; exits \
          nonzero if any response reports ok:false")
    Term.(
      const client $ socket_arg
      $ Arg.(value & flag
             & info [ "batch" ]
                 ~doc:"send all requests as one batch frame (a JSON array) \
                       instead of one frame each")
      $ Arg.(value & opt (some string) None
             & info [ "extract" ] ~docv:"FIELD"
                 ~doc:"print only $(docv) from each response; string \
                       fields print raw (handy for digest/dump diffing)")
      $ Arg.(value & pos_all string [] & info [] ~docv:"REQUEST"))

(* ------------------------------------------------------------------------ *)

let () =
  let doc = "flow-sensitive interprocedural constant propagation (PLDI 1995)" in
  let subcommands =
    [
      analyze_cmd; pipeline_cmd; run_cmd; dump_cmd; fold_cmd;
      inline_cmd; clone_cmd; verify_cmd; tables_cmd; generate_cmd; gen_cmd;
      fuzz_cmd; trace_cmd; serve_cmd; client_cmd;
    ]
  in
  (* Bare [fsicp]: one usage line naming every subcommand, then exit 2. *)
  let default =
    Term.(
      const (fun () ->
          Fmt.pr "usage: fsicp {%s} [ARGS...]  (fsicp CMD --help for details)@."
            (String.concat "|"
               (List.map (fun c -> Cmd.name c) subcommands));
          Stdlib.exit 2)
      $ const ())
  in
  exit
    (Cmd.eval (Cmd.group ~default (Cmd.info "fsicp" ~version ~doc) subcommands))
